// ControllerT member definitions. Included only by TUs that explicitly
// instantiate the template (controller.cpp for the shipped bank types) —
// user code sees controller.hpp's extern template declarations instead.
// BankT must be complete wherever this header is instantiated.
#pragma once

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sched/controller.hpp"

namespace fgnvm::sched {

template <typename BankT>
ControllerT<BankT>::ControllerT(const mem::MemGeometry& geometry,
                                const mem::TimingParams& timing,
                                const ControllerConfig& cfg,
                                const BankFactory& make_bank)
    : geo_(geometry),
      timing_(timing),
      cfg_(cfg),
      bus_(cfg.bus_lanes),
      writes_(cfg.write_queue_cap, cfg.wq_high, cfg.wq_low,
              geometry.line_bytes) {
  const std::uint64_t n = geo_.ranks_per_channel * geo_.banks_per_rank;
  banks_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) banks_.push_back(make_bank());
  typed_.reserve(n);
  for (const auto& b : banks_) {
    if constexpr (std::is_same_v<BankT, nvm::Bank>) {
      typed_.push_back(b.get());
    } else {
      auto* t = dynamic_cast<BankT*>(b.get());
      if (t == nullptr) {
        throw std::runtime_error(
            "ControllerT: bank factory produced a bank that is not the "
            "instantiated concrete type");
      }
      typed_.push_back(t);
    }
  }
  sag_last_read_.assign(n * geo_.num_sags, 0);

  // Read slot pool: fully sized from the configured queue depth so slots
  // never move or reallocate mid-run (rpool_base_ guards that invariant).
  rpool_.resize(cfg_.read_queue_cap);
  rpool_base_ = rpool_.data();
  rfree_.reserve(cfg_.read_queue_cap);
  for (std::uint64_t i = 0; i < cfg_.read_queue_cap; ++i) {
    rfree_.push_back(static_cast<std::int32_t>(cfg_.read_queue_cap - 1 - i));
  }
  ridx_.init(cfg_.read_queue_cap, n, geo_.num_sags, geo_.num_cds);
  widx_.init(cfg_.write_queue_cap, n, geo_.num_sags, geo_.num_cds);

  bank_cand_.assign(n, BankCand{});
  bank_dirty_.assign(n, 0);
  bank_pure_.reserve(n);
  for (const auto& b : banks_) bank_pure_.push_back(b->pure_timing() ? 1 : 0);
  all_pure_ = true;
  for (const std::uint8_t p : bank_pure_) all_pure_ = all_pure_ && p != 0;

  inflight_reads_.reserve(cfg_.read_queue_cap);
  completed_.reserve(cfg_.read_queue_cap);
  write_done_times_.reserve(cfg_.bg_write_inflight_max + 1);
  scratch_flags_.reserve(cfg_.read_queue_cap + cfg_.write_queue_cap);
  scratch_ref_flags_.reserve(cfg_.read_queue_cap + cfg_.write_queue_cap);
  scratch_cands_.reserve(cfg_.read_queue_cap + cfg_.write_queue_cap);

  cross_check_ = detail::paranoid_env();
}

template <typename BankT>
std::uint64_t ControllerT<BankT>::sag_group(const mem::DecodedAddr& a) const {
  return (a.rank * geo_.banks_per_rank + a.bank) * geo_.num_sags + a.sag;
}

template <typename BankT>
BankT& ControllerT<BankT>::bank_of(const mem::DecodedAddr& a) {
  return *typed_[a.rank * geo_.banks_per_rank + a.bank];
}

template <typename BankT>
const BankT& ControllerT<BankT>::bank_of(const mem::DecodedAddr& a) const {
  return *typed_[a.rank * geo_.banks_per_rank + a.bank];
}

template <typename BankT>
std::int32_t ControllerT<BankT>::alloc_read_slot() {
  assert(!rfree_.empty());
  assert(rpool_.data() == rpool_base_ && "read pool reallocated mid-run");
  const std::int32_t slot = rfree_.back();
  rfree_.pop_back();
  rpool_[static_cast<std::size_t>(slot)].live = true;
  return slot;
}

template <typename BankT>
void ControllerT<BankT>::free_read_slot(std::int32_t slot) {
  rpool_[static_cast<std::size_t>(slot)].live = false;
  rfree_.push_back(slot);
}

template <typename BankT>
bool ControllerT<BankT>::can_accept(OpType op) const {
  if (op == OpType::kRead) return ridx_.size() < cfg_.read_queue_cap;
  return !writes_.full();
}

template <typename BankT>
void ControllerT<BankT>::enqueue(mem::MemRequest req, Cycle now) {
  req.arrival = now;
  req.sched_seq = seq_counter_++;
  if (req.is_read()) {
    if (writes_.covers(req.addr.addr)) {
      // Store-to-load forwarding from the write queue: served next cycle.
      req.completion = now + 1;
      completed_.push_back(req);
      bump(h_reads_forwarded_, "reads.forwarded");
      if (!d_read_latency_) {
        d_read_latency_ = &stats_.distribution_ref("read_latency");
      }
      d_read_latency_->add(1.0);
      if (obs_) obs_->on_forwarded();
      return;
    }
    if (ridx_.size() >= cfg_.read_queue_cap) {
      throw std::runtime_error("Controller: read queue overflow");
    }
    if (bank_of(req.addr).segments_sensed(req.addr)) {
      bump(h_reads_row_hit_, "reads.row_hit_arrival");
    }
    const std::int32_t slot = alloc_read_slot();
    rpool_[static_cast<std::size_t>(slot)].req = req;
    const std::uint64_t b = bank_linear(req.addr);
    ridx_.insert(slot, b, req.addr);
    mark_bank_dirty(b);
    last_read_activity_ = now;
    sag_last_read_[sag_group(req.addr)] = now;
    bump(h_reads_accepted_, "reads.accepted");
    if (obs_) obs_->on_enqueue(req, now);
  } else {
    const std::int32_t slot = writes_.add_slot(req);
    if (slot < 0) {
      bump(h_writes_coalesced_, "writes.coalesced");
      if (obs_) obs_->on_coalesced();
    } else {
      const std::uint64_t b = bank_linear(req.addr);
      widx_.insert(slot, b, req.addr);
      mark_bank_dirty(b);
      bump(h_writes_accepted_, "writes.accepted");
      if (obs_) obs_->on_enqueue(req, now);
    }
  }
}

template <typename BankT>
void ControllerT<BankT>::maybe_close_row(const mem::DecodedAddr& a, Cycle now) {
  if (cfg_.page_policy != PagePolicy::kClosed) return;
  const std::uint64_t b = bank_linear(a);
  const bool close = ridx_.row_count(b, a.row) == 0 &&
                     widx_.row_count(b, a.row) == 0;
  if (cross_check_) {
    bool ref = true;
    for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
      if (rpool_[static_cast<std::size_t>(s)].req.addr.same_row(a)) {
        ref = false;
        break;
      }
    }
    for (std::int32_t s = writes_.first(); ref && s >= 0; s = writes_.next(s)) {
      if (writes_.at(s).addr.same_row(a)) ref = false;
    }
    if (close != ref) detail::throw_divergence("row-occupancy (maybe_close_row)");
  }
  if (!close) return;  // still wanted
  bank_of(a).close_row(a, now);
  bump(h_cmd_close_row_, "cmd.close_row");
  mark_bank_dirty(b);
}

template <typename BankT>
bool ControllerT<BankT>::write_conflicts_with_reads_reference(
    const mem::DecodedAddr& w) const {
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    const mem::DecodedAddr& a = rpool_[static_cast<std::size_t>(s)].req.addr;
    if (!a.same_bank(w)) continue;
    if (a.sag == w.sag) return true;
    // CD range overlap check.
    const std::uint64_t a_lo = a.cd, a_hi = a.cd + a.cd_count;
    const std::uint64_t w_lo = w.cd, w_hi = w.cd + w.cd_count;
    if (a_lo < w_hi && w_lo < a_hi) return true;
  }
  return false;
}

template <typename BankT>
bool ControllerT<BankT>::write_conflicts_with_reads(
    const mem::DecodedAddr& w) const {
  const std::uint64_t b = bank_linear(w);
  const bool conflict = ridx_.group_count(b * geo_.num_sags + w.sag) > 0 ||
                        ridx_.cd_overlap(b, w.cd, w.cd_count);
  if (cross_check_ && conflict != write_conflicts_with_reads_reference(w)) {
    detail::throw_divergence("SAG/CD conflict test");
  }
  return conflict;
}

// ---------------------------------------------------------------------------
// Read column selection.
//
// Within one selection pass every read candidate probes the bus at the same
// cycle (now + tCAS), so bus availability is uniform across candidates and
// the pre-index arrival-order scan reduces to: bus free -> the oldest
// bank-ready (sensed, column-timing met) read wins; bus busy -> every
// bank-ready read earns the sticky bus_blocked flag and nothing issues.
// Bank-ready reads are exactly the members of the open-row lists of the
// non-empty (bank, SAG) groups (sensed implies open row), so the indexed
// scan touches only eligible rows.
// ---------------------------------------------------------------------------

template <typename BankT>
std::int32_t ControllerT<BankT>::select_read_column_reference(
    Cycle now, std::vector<std::int32_t>& to_flag) const {
  to_flag.clear();
  const Cycle data_start = now + timing_.tCAS;
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    const mem::MemRequest& req = rpool_[static_cast<std::size_t>(s)].req;
    const BankT& bank = bank_of(req.addr);
    if (!bank.segments_sensed(req.addr)) {
      if (cfg_.policy == SchedulerPolicy::kFcfs) return -1;
      continue;
    }
    if (bank.earliest_column(req.addr, OpType::kRead, now) > now) {
      if (cfg_.policy == SchedulerPolicy::kFcfs) return -1;
      continue;
    }
    if (!bus_.available(data_start)) {
      to_flag.push_back(s);
      if (cfg_.policy == SchedulerPolicy::kFcfs) return -1;
      continue;
    }
    return s;
  }
  return -1;
}

template <typename BankT>
std::int32_t ControllerT<BankT>::select_read_column_indexed(
    Cycle now, std::vector<std::int32_t>& to_flag) const {
  to_flag.clear();
  if (ridx_.empty()) return -1;
  // O(1) out: no bank has a read column candidate (plain or flagged) due
  // yet, so there is nothing to issue and nothing new to flag.
  refresh_global();
  if (global_valid_ &&
      std::min(global_cand_.read_col_plain, global_cand_.read_col_flagged) >
          now) {
    return -1;
  }
  const Cycle data_start = now + timing_.tCAS;
  if (cfg_.policy == SchedulerPolicy::kFcfs) {
    // FCFS examines the queue head only.
    const std::int32_t s = ridx_.queue_head();
    const mem::MemRequest& req = rpool_[static_cast<std::size_t>(s)].req;
    const BankT& bank = bank_of(req.addr);
    if (!bank.segments_sensed(req.addr)) return -1;
    if (bank.earliest_column(req.addr, OpType::kRead, now) > now) return -1;
    if (!bus_.available(data_start)) {
      to_flag.push_back(s);
      return -1;
    }
    return s;
  }
  const bool bus_ok = bus_.available(data_start);
  if (bus_ok) {
    // Fast path: the global queue head is min-seq over every candidate, so
    // if it is bank-ready it wins outright (and with the bus free nothing
    // gets flagged). This is the common case for a row-hitting read stream.
    const std::int32_t s = ridx_.queue_head();
    const mem::MemRequest& req = rpool_[static_cast<std::size_t>(s)].req;
    const BankT& bank = bank_of(req.addr);
    if (bank.segments_sensed(req.addr) &&
        bank.earliest_column(req.addr, OpType::kRead, now) <= now) {
      return s;
    }
  }
  std::int32_t winner = -1;
  std::uint64_t winner_seq = ~0ULL;
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    // A clean pure-timing bank's cached candidates are exact: if neither
    // the plain nor the flagged column minimum has arrived yet, no member
    // of this bank can issue (or be flagged) at `now`.
    if (!bank_dirty_[b] && bank_pure_[b] &&
        std::min(bank_cand_[b].read_col_plain,
                 bank_cand_[b].read_col_flagged) > now) {
      continue;
    }
    const BankT& bank = *typed_[b];
    for (const std::uint32_t g : ridx_.active_groups_of_bank(b)) {
      const std::uint64_t row = bank.open_row_of(g % geo_.num_sags);
      if (row == kInvalidAddr) continue;
      for (std::int32_t s = ridx_.row_head(b, row); s >= 0;
           s = ridx_.row_next(s)) {
        const mem::MemRequest& req = rpool_[static_cast<std::size_t>(s)].req;
        // With the bus free nothing gets flagged, so younger-than-winner
        // members can skip the timing probes outright.
        if (bus_ok && req.sched_seq >= winner_seq) continue;
        if (!bank.segments_sensed(req.addr)) continue;
        if (bank.earliest_column(req.addr, OpType::kRead, now) > now) continue;
        if (bus_ok) {
          winner_seq = req.sched_seq;
          winner = s;
        } else {
          to_flag.push_back(s);
        }
      }
    }
  }
  return winner;
}

template <typename BankT>
void ControllerT<BankT>::verify_pick(const char* what, bool same_pick,
                                     std::vector<std::int32_t>& flags,
                                     std::vector<std::int32_t>& ref_flags) const {
  std::sort(flags.begin(), flags.end());
  std::sort(ref_flags.begin(), ref_flags.end());
  if (!same_pick || flags != ref_flags) detail::throw_divergence(what);
}

template <typename BankT>
void ControllerT<BankT>::apply_read_flags(
    const std::vector<std::int32_t>& slots) {
  for (const std::int32_t s : slots) {
    mem::MemRequest& req = rpool_[static_cast<std::size_t>(s)].req;
    if (!req.bus_blocked) {
      req.bus_blocked = true;
      mark_bank_dirty(bank_linear(req.addr));
    }
  }
}

template <typename BankT>
void ControllerT<BankT>::apply_write_flags(
    const std::vector<std::int32_t>& slots) {
  for (const std::int32_t s : slots) {
    mem::MemRequest& w = writes_.at_mut(s);
    if (!w.bus_blocked) {
      w.bus_blocked = true;
      mark_bank_dirty(bank_linear(w.addr));
    }
  }
}

template <typename BankT>
bool ControllerT<BankT>::try_issue_read_column(Cycle now) {
  const std::int32_t slot = select_read_column_indexed(now, scratch_flags_);
  if (cross_check_) {
    const std::int32_t ref =
        select_read_column_reference(now, scratch_ref_flags_);
    verify_pick("read-column selection", slot == ref, scratch_flags_,
                scratch_ref_flags_);
  }
  // Sticky flags, counted once at issue: "bursts delayed by bus contention".
  // next_event folds bus availability into the candidate of a flagged read,
  // so the event loop need not revisit busy cycles.
  apply_read_flags(scratch_flags_);
  if (slot < 0) return false;

  const mem::MemRequest req = rpool_[static_cast<std::size_t>(slot)].req;
  BankT& bank = bank_of(req.addr);
  const Cycle data_start = now + timing_.tCAS;
  if (req.bus_blocked) bump(h_bus_col_conflicts_, "bus.column_conflicts");
  const Cycle burst_start = bank.issue_column(req.addr, OpType::kRead, now);
  assert(burst_start == data_start);
  (void)burst_start;
  bus_.reserve(data_start, timing_.tBURST);
  if (obs_) obs_->on_read_burst(req.id, now, data_start);
  inflight_reads_.push_back(InFlight{req, data_start + timing_.tBURST});
  sag_last_read_[sag_group(req.addr)] = now;
  const std::uint64_t b = bank_linear(req.addr);
  ridx_.remove(slot, b, req.addr);
  free_read_slot(slot);
  mark_bank_dirty(b);
  bump(h_cmd_read_, "cmd.read");
  maybe_close_row(req.addr, now);
  return true;
}

// ---------------------------------------------------------------------------
// Read activate selection. Per (bank, sag), only the *oldest* queued read
// may trigger an ACT; this both mirrors the per-SAG row-latch (one pending
// row per SAG) and guarantees the oldest request in a SAG always makes
// progress (no livelock from row-buffer thrashing). The oldest per group is
// the group-list head, so the indexed scan walks the heads of the non-empty
// groups in arrival order instead of the whole queue, and demand
// aggregation reads the (bank, row) list instead of re-scanning the queue
// per head.
// ---------------------------------------------------------------------------

template <typename BankT>
auto ControllerT<BankT>::select_read_activate_reference(Cycle now) const
    -> ActPick {
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    if (!ridx_.is_group_head(s)) continue;  // not oldest in its (bank, SAG)
    const mem::DecodedAddr& a = rpool_[static_cast<std::size_t>(s)].req.addr;
    const BankT& bank = bank_of(a);
    if (bank.segments_sensed(a)) continue;  // waiting on column, not ACT
    std::uint64_t extra_cds = 0;
    if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented) {
      // Demand-aggregated partial activation: one ACT senses every CD that
      // queued reads to this same row already want (the per-CD CSLs are
      // one-hot, so several can be enabled in a single activation).
      for (std::int32_t o = ridx_.queue_head(); o >= 0;
           o = ridx_.queue_next(o)) {
        const mem::DecodedAddr& oa =
            rpool_[static_cast<std::size_t>(o)].req.addr;
        if (oa.same_row(a)) {
          for (std::uint64_t i = 0; i < oa.cd_count; ++i) {
            extra_cds |= 1ULL << (oa.cd + i);
          }
        }
      }
    }
    if (bank.earliest_activate(a, nvm::ActPurpose::kRead, now, extra_cds) <=
        now) {
      return {s, extra_cds};
    }
    if (cfg_.policy == SchedulerPolicy::kFcfs) return {-1, 0};
  }
  return {-1, 0};
}

template <typename BankT>
auto ControllerT<BankT>::select_read_activate_indexed(Cycle now) const
    -> ActPick {
  if (cfg_.policy == SchedulerPolicy::kFcfs) {
    // FCFS bails out at the first group head that cannot activate —
    // inherently an arrival-order walk, so it runs on the queue list.
    return select_read_activate_reference(now);
  }
  // Selection is side-effect-free, so "first in arrival order that passes"
  // is "min sched_seq among all heads that pass" — no need to sort the
  // heads, just track the running minimum and prune heads that are already
  // younger than the best passing candidate. The global queue head (min-seq
  // over everything, and always its group's head) gets a first look: if it
  // passes, the group scan is skipped entirely.
  if (ridx_.empty()) return {-1, 0};
  // O(1) out: no group head anywhere can activate yet.
  refresh_global();
  if (global_valid_ && global_cand_.read_act > now) return {-1, 0};
  ActPick pick{-1, 0};
  std::uint64_t winner_seq = ~0ULL;
  {
    const std::int32_t s = ridx_.queue_head();
    const mem::DecodedAddr& a = rpool_[static_cast<std::size_t>(s)].req.addr;
    const BankT& bank = bank_of(a);
    if (!bank.segments_sensed(a)) {
      std::uint64_t extra_cds = 0;
      if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented) {
        const std::uint64_t b = bank_linear(a);
        for (std::int32_t o = ridx_.row_head(b, a.row); o >= 0;
             o = ridx_.row_next(o)) {
          const mem::DecodedAddr& oa =
              rpool_[static_cast<std::size_t>(o)].req.addr;
          for (std::uint64_t i = 0; i < oa.cd_count; ++i) {
            extra_cds |= 1ULL << (oa.cd + i);
          }
        }
      }
      if (bank.earliest_activate(a, nvm::ActPurpose::kRead, now, extra_cds) <=
          now) {
        return {s, extra_cds};
      }
    }
  }
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    // Clean pure-timing banks with no ACT candidate due yet cannot win.
    if (!bank_dirty_[b] && bank_pure_[b] && bank_cand_[b].read_act > now) {
      continue;
    }
    const BankT& bank = *typed_[b];
    for (const std::uint32_t g : ridx_.active_groups_of_bank(b)) {
      const std::int32_t s = ridx_.group_head(g);
      const mem::MemRequest& req = rpool_[static_cast<std::size_t>(s)].req;
      if (req.sched_seq >= winner_seq) continue;
      const mem::DecodedAddr& a = req.addr;
      if (bank.segments_sensed(a)) continue;
      std::uint64_t extra_cds = 0;
      if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented) {
        for (std::int32_t o = ridx_.row_head(b, a.row); o >= 0;
             o = ridx_.row_next(o)) {
          const mem::DecodedAddr& oa =
              rpool_[static_cast<std::size_t>(o)].req.addr;
          for (std::uint64_t i = 0; i < oa.cd_count; ++i) {
            extra_cds |= 1ULL << (oa.cd + i);
          }
        }
      }
      if (bank.earliest_activate(a, nvm::ActPurpose::kRead, now, extra_cds) <=
          now) {
        winner_seq = req.sched_seq;
        pick = {s, extra_cds};
      }
    }
  }
  return pick;
}

template <typename BankT>
bool ControllerT<BankT>::try_issue_read_activate(Cycle now) {
  const ActPick pick = select_read_activate_indexed(now);
  if (cross_check_ && cfg_.policy != SchedulerPolicy::kFcfs) {
    const ActPick ref = select_read_activate_reference(now);
    if (pick.slot != ref.slot || pick.extra_cds != ref.extra_cds) {
      detail::throw_divergence("read-activate selection");
    }
  }
  if (pick.slot < 0) return false;

  const mem::DecodedAddr& a =
      rpool_[static_cast<std::size_t>(pick.slot)].req.addr;
  BankT& bank = bank_of(a);
  // An underfetch re-sense is an ACT on the already-open row (some CDs
  // the queue wants were not sensed by the earlier activation).
  const bool underfetch = bank.row_open(a);
  bank.issue_activate(a, nvm::ActPurpose::kRead, now, pick.extra_cds);
  const std::uint64_t b = bank_linear(a);
  mark_bank_dirty(b);
  bump(h_cmd_act_read_, "cmd.act_read");
  if (obs_) {
    // Stamp the ACT on every queued read this activation now covers —
    // exactly the same-row requests, i.e. the (bank, row) list.
    for (std::int32_t o = ridx_.row_head(b, a.row); o >= 0;
         o = ridx_.row_next(o)) {
      const mem::MemRequest& other = rpool_[static_cast<std::size_t>(o)].req;
      if (bank.segments_sensed(other.addr)) {
        obs_->on_activate(other.id, now, underfetch);
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Write selection. As with reads, only the oldest write per (bank, SAG) may
// change that SAG's open row — otherwise queued writes to different rows of
// one SAG thrash the row latch and re-activate forever. In the pre-index
// arrival walk a write can only act (and only has side effects) when it is
// its group's head (ACT path) or targets its SAG's open row (column path);
// every other write is skipped with no effect. The indexed selection
// therefore gathers exactly those candidates — group heads plus open-row
// list members — and evaluates them in arrival (sched_seq) order with the
// unchanged per-write rules.
// ---------------------------------------------------------------------------

template <typename BankT>
auto ControllerT<BankT>::select_write_reference(
    Cycle now, bool background_only, std::vector<std::int32_t>& to_flag) const
    -> WritePick {
  to_flag.clear();
  const Cycle data_start = now + timing_.tCWD;
  for (std::int32_t s = writes_.first(); s >= 0; s = writes_.next(s)) {
    const mem::MemRequest& w = writes_.at(s);
    const bool oldest_in_group = widx_.is_group_head(s);
    if (background_only) {
      // A backgrounded write must not collide with queued reads (Section-4
      // SAG/CD constraint) nor park itself in a SAG the read stream is
      // actively using — a 150 ns program pulse there stalls the next burst.
      if (write_conflicts_with_reads_reference(w.addr)) continue;
      if (now < sag_last_read_[sag_group(w.addr)] + cfg_.bg_write_guard)
        continue;
    }
    const BankT& bank = bank_of(w.addr);
    if (!bank.row_open(w.addr)) {
      if (oldest_in_group &&
          bank.earliest_activate(w.addr, nvm::ActPurpose::kWrite, now) <= now) {
        return {s, /*activate=*/true};
      }
      continue;
    }
    if (bank.earliest_column(w.addr, OpType::kWrite, now) > now) continue;
    if (!bus_.available(data_start)) {
      to_flag.push_back(s);
      continue;
    }
    return {s, /*activate=*/false};
  }
  return {-1, false};
}

template <typename BankT>
auto ControllerT<BankT>::select_write_indexed(
    Cycle now, bool background_only, std::vector<std::int32_t>& to_flag) const
    -> WritePick {
  to_flag.clear();
  if (widx_.empty()) return {-1, false};
  // O(1) out: no write (ACT or column, plain or flagged) is due yet on any
  // bank under this drain mode's filters — nothing to pick, nothing to flag.
  refresh_global();
  if (global_valid_) {
    const BankCand& g = global_cand_;
    const Cycle m = background_only
                        ? std::min(g.write_bg_plain, g.write_bg_flagged)
                        : std::min(g.write_plain, g.write_flagged);
    if (m > now) return {-1, false};
  }
  // As in read selection, the pass is side-effect-free and bus availability
  // is uniform across candidates, so the arrival-order winner is the min
  // sched_seq passing candidate and no gather/sort is needed. The
  // background-write SAG-conflict and read-recency-guard tests depend only
  // on the (bank, SAG) group, so they filter whole groups before any
  // per-write work; only the CD-overlap test is per-write.
  const Cycle data_start = now + timing_.tCWD;
  const bool bus_ok = bus_.available(data_start);
  {
    // Fast path: the write-queue head is min-seq over every candidate and
    // always its group's head, so if it passes it wins outright — and no
    // flag can precede the arrival-order winner, so to_flag stays empty.
    const std::int32_t h = widx_.queue_head();
    const mem::MemRequest& w = writes_.at(h);
    const std::uint64_t b = bank_linear(w.addr);
    const std::uint64_t g = b * geo_.num_sags + w.addr.sag;
    const bool bg_ok =
        !background_only ||
        (ridx_.group_count(g) == 0 &&
         now >= sag_last_read_[g] + cfg_.bg_write_guard &&
         !ridx_.cd_overlap(b, w.addr.cd, w.addr.cd_count));
    if (bg_ok) {
      const BankT& bank = *typed_[b];
      if (!bank.row_open(w.addr)) {
        if (bank.earliest_activate(w.addr, nvm::ActPurpose::kWrite, now) <=
            now) {
          return {h, /*activate=*/true};
        }
      } else if (bus_ok &&
                 bank.earliest_column(w.addr, OpType::kWrite, now) <= now) {
        return {h, /*activate=*/false};
      }
    }
  }
  WritePick pick{-1, false};
  std::uint64_t winner_seq = ~0ULL;
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    // Clean pure-timing banks whose cached write minima (guard folded for
    // the background path) have not arrived yet cannot contribute a winner
    // or a flag.
    if (!bank_dirty_[b] && bank_pure_[b]) {
      const BankCand& c = bank_cand_[b];
      const Cycle m = background_only
                          ? std::min(c.write_bg_plain, c.write_bg_flagged)
                          : std::min(c.write_plain, c.write_flagged);
      if (m > now) continue;
    }
    const BankT& bank = *typed_[b];
    for (const std::uint32_t g : widx_.active_groups_of_bank(b)) {
      if (background_only) {
        // ridx_ and widx_ share the group-id space (bank * num_sags + sag),
        // and sag_group(w.addr) == g for every member of g.
        if (ridx_.group_count(g) > 0) continue;
        if (now < sag_last_read_[g] + cfg_.bg_write_guard) continue;
      }
      const std::int32_t head = widx_.group_head(g);
      const mem::MemRequest& hw = writes_.at(head);
      // row_open(a) is open_row_of(a.sag) == a.row for every bank kind, and
      // all group members share the SAG — one virtual call covers the group.
      const std::uint64_t row = bank.open_row_of(g % geo_.num_sags);
      if (hw.addr.row != row) {
        // Only the group head may activate; a head on the open row never
        // activates. (Younger group members on the open row are still
        // column candidates below.)
        if (hw.sched_seq < winner_seq &&
            !(background_only &&
              ridx_.cd_overlap(b, hw.addr.cd, hw.addr.cd_count)) &&
            bank.earliest_activate(hw.addr, nvm::ActPurpose::kWrite, now) <=
                now) {
          winner_seq = hw.sched_seq;
          pick = {head, /*activate=*/true};
        }
      }
      if (row == kInvalidAddr) continue;
      for (std::int32_t s = widx_.row_head(b, row); s >= 0;
           s = widx_.row_next(s)) {
        const mem::MemRequest& w = writes_.at(s);
        // With the bus free nothing gets flagged, so younger-than-winner
        // members can skip the timing probes outright.
        if (bus_ok && w.sched_seq >= winner_seq) continue;
        if (background_only &&
            ridx_.cd_overlap(b, w.addr.cd, w.addr.cd_count)) {
          continue;
        }
        if (bank.earliest_column(w.addr, OpType::kWrite, now) > now) continue;
        if (!bus_ok) {
          to_flag.push_back(s);
        } else {
          winner_seq = w.sched_seq;
          pick = {s, /*activate=*/false};
        }
      }
    }
  }
  // The reference arrival walk stops flagging at the winner (which, with
  // the bus busy, can only be an ACT), so drop flags younger than it. An
  // equal seq is impossible: a flagged write never wins.
  if (pick.slot >= 0 && !to_flag.empty()) {
    std::erase_if(to_flag, [&](std::int32_t s) {
      return writes_.at(s).sched_seq > winner_seq;
    });
  }
  return pick;
}

template <typename BankT>
bool ControllerT<BankT>::try_issue_write(Cycle now, bool background_only) {
  const WritePick pick =
      select_write_indexed(now, background_only, scratch_flags_);
  if (cross_check_) {
    const WritePick ref =
        select_write_reference(now, background_only, scratch_ref_flags_);
    verify_pick("write selection",
                pick.slot == ref.slot && pick.activate == ref.activate,
                scratch_flags_, scratch_ref_flags_);
  }
  apply_write_flags(scratch_flags_);
  if (pick.slot < 0) return false;

  if (pick.activate) {
    const mem::MemRequest& w = writes_.at(pick.slot);
    BankT& bank = bank_of(w.addr);
    bank.issue_activate(w.addr, nvm::ActPurpose::kWrite, now);
    mark_bank_dirty(bank_linear(w.addr));
    bump(h_cmd_act_write_, "cmd.act_write");
    if (obs_) obs_->on_activate(w.id, now, /*underfetch=*/false);
    return true;
  }

  const mem::MemRequest w = writes_.at(pick.slot);
  BankT& bank = bank_of(w.addr);
  const Cycle data_start = now + timing_.tCWD;
  if (w.bus_blocked) bump(h_bus_col_conflicts_, "bus.column_conflicts");
  const Cycle done = bank.issue_column(w.addr, OpType::kWrite, now);
  write_done_times_.push_back(done);
  bus_.reserve(data_start, timing_.tBURST);
  if (obs_) obs_->on_write_issue(w.id, now, done);
  const std::uint64_t b = bank_linear(w.addr);
  widx_.remove(pick.slot, b, w.addr);
  writes_.remove_slot(pick.slot);
  mark_bank_dirty(b);
  bump(background_only ? h_cmd_write_bg_ : h_cmd_write_drain_,
       background_only ? "cmd.write_background" : "cmd.write_drain");
  bump(h_cmd_write_, "cmd.write");
  // Closed-page: the write's row closes once the program completes.
  if (cfg_.page_policy == PagePolicy::kClosed) maybe_close_row(w.addr, done);
  return true;
}

template <typename BankT>
bool ControllerT<BankT>::try_issue(Cycle now, bool& write_done) {
  const bool draining = writes_.draining();
  const bool idle_reads = ridx_.empty();

  const auto issue_write = [&](bool background_only) {
    if (write_done) return false;
    if (try_issue_write(now, background_only)) {
      write_done = true;
      return true;
    }
    return false;
  };

  if (draining) {
    if (issue_write(/*background_only=*/false)) return true;
    if (try_issue_read_column(now)) return true;
    return try_issue_read_activate(now);
  }
  if (try_issue_read_column(now)) return true;
  if (try_issue_read_activate(now)) return true;
  // Count writes still programming (for the background in-flight cap).
  std::erase_if(write_done_times_, [&](Cycle done) { return done <= now; });
  if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
      writes_.size() >= cfg_.bg_write_min &&
      write_done_times_.size() < cfg_.bg_write_inflight_max) {
    // Backgrounded Writes: slip writes under pending reads whenever the
    // target (bank, SAG, CD) is disjoint from every queued read. The
    // occupancy floor preserves the coalescing window — draining writes the
    // moment they arrive forfeits merges with imminent rewrites.
    if (issue_write(/*background_only=*/true)) return true;
  }
  if (idle_reads && inflight_reads_.empty() && !writes_.empty()) {
    // Conventional opportunistic drain while the read stream is idle — but
    // only once enough writes accumulated or the stream has been quiet for
    // a while; dribbling single writes out eagerly trashes open rows the
    // read stream is about to revisit.
    const bool quiet =
        now >= last_read_activity_ + cfg_.drain_idle_timeout;
    if (writes_.size() >= cfg_.wq_low || quiet) {
      return issue_write(/*background_only=*/false);
    }
  }
  return false;
}

template <typename BankT>
void ControllerT<BankT>::tick(Cycle now) {
  // Charge the span since the previous tick to each traced request's pending
  // cause before any state changes this cycle.
  if (obs_) obs_->close_spans(now);

  // Retire finished read bursts.
  for (auto it = inflight_reads_.begin(); it != inflight_reads_.end();) {
    if (it->done <= now) {
      it->req.completion = it->done;
      const double latency = static_cast<double>(it->done - it->req.arrival);
      if (!d_read_latency_) {
        d_read_latency_ = &stats_.distribution_ref("read_latency");
      }
      d_read_latency_->add(latency);
      if (!h_read_latency_hist_) {
        h_read_latency_hist_ = &stats_.histogram_ref("read_latency_hist");
      }
      h_read_latency_hist_->add(latency);
      if (obs_) obs_->on_read_complete(it->req.id, it->done);
      completed_.push_back(it->req);
      it = inflight_reads_.erase(it);
    } else {
      ++it;
    }
  }

  writes_.update_drain();
  bool write_done = false;
  for (std::uint64_t slot = 0; slot < cfg_.issue_width; ++slot) {
    if (!try_issue(now, write_done)) break;
  }

  if (obs_) observe_blocking(now);
}

template <typename BankT>
Cycle ControllerT<BankT>::advance_to(Cycle due, Cycle horizon) {
  // Exactly the serial lazy schedule restricted to this channel: in that
  // schedule the channel ticks at cycle w iff its cached due equals w, and
  // each tick re-arms due from next_event — i.e. the channel walks its own
  // event chain. Pending completions only short-circuit next_event to
  // "wake the caller", never enable an earlier command issue, so the chain
  // is computed with next_event_internal and the buffered completions are
  // delivered by the caller at the horizon (in channel order). Ticks the
  // serial schedule would run at completion-delivery cycles inside the
  // window are no-op ticks by the next_event contract and are skipped.
  while (due < horizon) {
    tick(due);
    due = next_event_internal(due);
  }
  return due;
}

template <typename BankT>
Cycle ControllerT<BankT>::completion_bound(Cycle now) const {
  if (!completed_.empty()) return now + 1;
  Cycle bound = kNeverCycle;
  for (const InFlight& fl : inflight_reads_) bound = std::min(bound, fl.done);
  if (!ridx_.empty()) {
    // A queued read's burst cannot start before the channel's next state
    // change (its column issue is a state change), so its completion is at
    // least next_event + tCAS + tBURST. No enqueues happen while the caller
    // waits, so store-to-load forwarding cannot create an earlier one.
    const Cycle ne = next_event_internal(now);
    if (ne != kNeverCycle) {
      bound = std::min(bound, ne + timing_.tCAS + timing_.tBURST);
    }
  }
  if (bound == kNeverCycle) return kNeverCycle;
  return std::max(bound, now + 1);
}

template <typename BankT>
void ControllerT<BankT>::observe_blocking(Cycle now) {
  using obs::BlockCause;
  // Post-issue classification: everything still queued here failed to issue
  // this tick; the bank state now reflects whatever did issue, so the cause
  // read off the bank is the one that will hold until the next event.
  bool head = true;
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    const mem::MemRequest& r = rpool_[static_cast<std::size_t>(s)].req;
    const mem::DecodedAddr& a = r.addr;
    const bool oldest = ridx_.is_group_head(s);
    if (cfg_.policy == SchedulerPolicy::kFcfs && !head) {
      // FCFS serves strictly in order: everything behind the head waits on
      // the queue discipline, whatever the banks look like.
      obs_->set_cause(r.id, BlockCause::kQueuePolicy, now);
      continue;
    }
    head = false;
    const BankT& bank = bank_of(a);
    BlockCause cause;
    if (bank.segments_sensed(a)) {
      cause = bank.column_block_cause(a, OpType::kRead, now);
      if (cause == BlockCause::kNone) {
        cause = bus_.available(now + timing_.tCAS) ? BlockCause::kQueuePolicy
                                                   : BlockCause::kBusConflict;
      }
    } else if (!oldest) {
      cause = BlockCause::kQueuePolicy;  // an older read owns this SAG's ACT
    } else {
      cause = bank.activate_block_cause(a, nvm::ActPurpose::kRead, now);
      if (cause == BlockCause::kNone) cause = BlockCause::kQueuePolicy;
    }
    obs_->set_cause(r.id, cause, now);
  }

  if (writes_.empty()) return;
  const bool draining = writes_.draining();
  const bool idle_path = !draining && ridx_.empty() &&
                         inflight_reads_.empty() &&
                         (writes_.size() >= cfg_.wq_low ||
                          now >= last_read_activity_ + cfg_.drain_idle_timeout);
  std::uint64_t live_writes = 0;
  for (const Cycle d : write_done_times_) live_writes += d > now ? 1 : 0;
  const bool bg_path = !draining &&
                       cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
                       writes_.size() >= cfg_.bg_write_min &&
                       live_writes < cfg_.bg_write_inflight_max;
  for (std::int32_t s = writes_.first(); s >= 0; s = writes_.next(s)) {
    const mem::MemRequest& w = writes_.at(s);
    const bool oldest = widx_.is_group_head(s);
    bool eligible = draining || idle_path;
    if (!eligible && bg_path && !write_conflicts_with_reads(w.addr) &&
        now >= sag_last_read_[sag_group(w.addr)] + cfg_.bg_write_guard) {
      eligible = true;
    }
    BlockCause cause = BlockCause::kQueuePolicy;
    if (eligible) {
      const BankT& bank = bank_of(w.addr);
      if (bank.row_open(w.addr)) {
        cause = bank.column_block_cause(w.addr, OpType::kWrite, now);
        if (cause == BlockCause::kNone) {
          cause = bus_.available(now + timing_.tCWD)
                      ? BlockCause::kQueuePolicy
                      : BlockCause::kBusConflict;
        }
      } else if (oldest) {
        cause = bank.activate_block_cause(w.addr, nvm::ActPurpose::kWrite, now);
        if (cause == BlockCause::kNone) cause = BlockCause::kQueuePolicy;
      }
    }
    obs_->set_cause(w.id, cause, now);
  }
}

template <typename BankT>
void ControllerT<BankT>::sample_obs(Cycle now, obs::ChannelSample& s) const {
  s.read_q += ridx_.size();
  s.write_q += writes_.size();
  s.inflight += inflight_reads_.size();
  const std::uint64_t nbanks = banks_.size();
  s.banks += nbanks;
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    s.max_bank_q = std::max(s.max_bank_q, ridx_.bank_count(b));
  }
  for (const auto& bank : banks_) {
    s.open_acts += bank->active_sags(now);
    s.busy_tiles += bank->active_cds(now);
  }
  // A CD serves one (SAG, CD) tile group at a time, so the number of tile
  // groups usable concurrently — the utilization denominator — is the CD
  // count, not SAGs x CDs.
  s.tile_groups += nbanks * geo_.num_cds;
}

template <typename BankT>
std::vector<mem::MemRequest> ControllerT<BankT>::take_completed() {
  std::vector<mem::MemRequest> out;
  out.swap(completed_);
  return out;
}

template <typename BankT>
void ControllerT<BankT>::drain_completed(std::vector<mem::MemRequest>& out) {
  out.insert(out.end(), completed_.begin(), completed_.end());
  completed_.clear();
}

template <typename BankT>
bool ControllerT<BankT>::idle() const {
  return ridx_.empty() && writes_.empty() && inflight_reads_.empty() &&
         completed_.empty();
}

// ---------------------------------------------------------------------------
// next_event. The contract (see DESIGN.md §6): the returned cycle must never
// overshoot the first cycle > now at which tick() would change any state or
// stat. It may undershoot (an early wake-up is a harmless no-op tick).
//
// The indexed implementation serves per-bank candidate minima from a cache
// (recomputed only for dirty banks) and applies the query-time globals —
// t0 clamp, bus readiness for flagged candidates, drain/idle/background
// gates — on top. That is exact because every global G combines as
// min_i max(c_i, G) == max(min_i c_i, G). FCFS read scans stop at the queue
// head, which does not decompose per bank, so FCFS uses the reference walk.
// ---------------------------------------------------------------------------

template <typename BankT>
void ControllerT<BankT>::refresh_global() const {
  // Only meaningful with every bank pure_timing: candidates computed at
  // t=0 stay valid at any later query (the clamp identity), so dirty banks
  // can be refreshed mid-tick, right after an issue, and the fold below
  // bounds every selector until the next mark_bank_dirty.
  if (!all_pure_ || global_valid_) return;
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    if (bank_dirty_[b]) {
      recompute_bank_cand(b, 0);
      bank_dirty_[b] = 0;
    }
  }
  BankCand g;
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    const BankCand& c = bank_cand_[b];
    g.read_col_plain = std::min(g.read_col_plain, c.read_col_plain);
    g.read_col_flagged = std::min(g.read_col_flagged, c.read_col_flagged);
    g.read_act = std::min(g.read_act, c.read_act);
    g.write_plain = std::min(g.write_plain, c.write_plain);
    g.write_flagged = std::min(g.write_flagged, c.write_flagged);
    g.write_bg_plain = std::min(g.write_bg_plain, c.write_bg_plain);
    g.write_bg_flagged = std::min(g.write_bg_flagged, c.write_bg_flagged);
  }
  global_cand_ = g;
  global_valid_ = true;
}

template <typename BankT>
void ControllerT<BankT>::recompute_bank_cand(std::uint64_t b, Cycle tq) const {
  BankCand c;
  const BankT& bank = *typed_[b];
  const bool aug = cfg_.policy == SchedulerPolicy::kFrfcfsAugmented;

  for (const std::uint32_t g : ridx_.active_groups_of_bank(b)) {
    const std::int32_t head = ridx_.group_head(g);
    const mem::DecodedAddr& ha =
        rpool_[static_cast<std::size_t>(head)].req.addr;
    if (!bank.segments_sensed(ha)) {
      std::uint64_t extra_cds = 0;
      if (aug) {
        for (std::int32_t o = ridx_.row_head(b, ha.row); o >= 0;
             o = ridx_.row_next(o)) {
          const mem::DecodedAddr& oa =
              rpool_[static_cast<std::size_t>(o)].req.addr;
          for (std::uint64_t i = 0; i < oa.cd_count; ++i) {
            extra_cds |= 1ULL << (oa.cd + i);
          }
        }
      }
      c.read_act = std::min(
          c.read_act,
          bank.earliest_activate(ha, nvm::ActPurpose::kRead, tq, extra_cds));
    }
    const std::uint64_t row = bank.open_row_of(g % geo_.num_sags);
    if (row != kInvalidAddr) {
      for (std::int32_t s = ridx_.row_head(b, row); s >= 0;
           s = ridx_.row_next(s)) {
        const mem::MemRequest& r = rpool_[static_cast<std::size_t>(s)].req;
        if (!bank.segments_sensed(r.addr)) continue;
        const Cycle e = bank.earliest_column(r.addr, OpType::kRead, tq);
        Cycle& tgt = r.bus_blocked ? c.read_col_flagged : c.read_col_plain;
        tgt = std::min(tgt, e);
      }
    }
  }

  for (const std::uint32_t g : widx_.active_groups_of_bank(b)) {
    const std::int32_t head = widx_.group_head(g);
    const mem::MemRequest& hw = writes_.at(head);
    // The background SAG-conflict half of write_conflicts_with_reads is
    // uniform across the group (shared group-id space with ridx_); only
    // the CD-overlap half is per-write.
    const bool bg_group = aug && ridx_.group_count(g) == 0;
    const Cycle guard = sag_last_read_[g] + cfg_.bg_write_guard;
    // row_open(a) is open_row_of(a.sag) == a.row for every bank kind —
    // one virtual call covers the whole group.
    const std::uint64_t row = bank.open_row_of(g % geo_.num_sags);
    if (hw.addr.row != row) {
      const Cycle e =
          bank.earliest_activate(hw.addr, nvm::ActPurpose::kWrite, tq);
      // ACT candidates never fold in the bus, so they live in the plain min.
      c.write_plain = std::min(c.write_plain, e);
      if (bg_group && !ridx_.cd_overlap(b, hw.addr.cd, hw.addr.cd_count)) {
        c.write_bg_plain = std::min(c.write_bg_plain, std::max(e, guard));
      }
    }
    if (row != kInvalidAddr) {
      for (std::int32_t s = widx_.row_head(b, row); s >= 0;
           s = widx_.row_next(s)) {
        const mem::MemRequest& w = writes_.at(s);
        const Cycle e = bank.earliest_column(w.addr, OpType::kWrite, tq);
        (w.bus_blocked ? c.write_flagged : c.write_plain) =
            std::min(w.bus_blocked ? c.write_flagged : c.write_plain, e);
        if (bg_group && !ridx_.cd_overlap(b, w.addr.cd, w.addr.cd_count)) {
          Cycle& tgt =
              w.bus_blocked ? c.write_bg_flagged : c.write_bg_plain;
          tgt = std::min(tgt, std::max(e, guard));
        }
      }
    }
  }

  bank_cand_[b] = c;
}

template <typename BankT>
Cycle ControllerT<BankT>::next_event_indexed(Cycle now) const {
  const Cycle t0 = now + 1;
  // A pending drain-latch flip is applied by the next tick's update_drain;
  // the flip itself is the event (see WriteQueue::drain_update_pending).
  if (writes_.drain_update_pending()) return t0;
  Cycle next = kNeverCycle;
  const auto consider = [&](Cycle cand) {
    next = std::min(next, std::max(cand, t0));
  };

  for (const InFlight& fl : inflight_reads_) {
    consider(fl.done);
    if (next == t0) return t0;  // no earlier actionable cycle exists
  }

  // Refreshes every pure-timing bank (and the global fold the selectors
  // gate on); the loop below then only touches banks with time-driven
  // state (DRAM refresh), which are recomputed at the querying cycle —
  // always, so stale dirty bits never matter for them either way.
  refresh_global();
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    if (bank_dirty_[b] || !bank_pure_[b]) {
      recompute_bank_cand(b, bank_pure_[b] ? 0 : t0);
      bank_dirty_[b] = 0;
    }
  }

  // The first time a bank-ready read meets a busy bus, tick() sets its
  // sticky bus_blocked flag — a state change, so the candidate of an
  // unflagged read must NOT fold in bus availability (the wake at
  // bank-ready is where the flag gets set). Once flagged, nothing changes
  // until a lane frees up, so the candidate is the conjunction of bank and
  // bus readiness.
  const Cycle bus_read_ready =
      bus_.earliest_start(t0 + timing_.tCAS) - timing_.tCAS;
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    const BankCand& c = bank_cand_[b];
    consider(c.read_col_plain);
    consider(std::max(c.read_col_flagged, bus_read_ready));
    consider(c.read_act);
    if (next == t0) return t0;
  }

  if (!writes_.empty()) {
    const bool draining = writes_.draining();
    const bool idle_path =
        !draining && ridx_.empty() && inflight_reads_.empty();
    // Low-occupancy idle drains additionally wait for the read stream to
    // have been quiet for drain_idle_timeout.
    Cycle idle_gate = 0;
    if (idle_path && writes_.size() < cfg_.wq_low) {
      idle_gate = last_read_activity_ + cfg_.drain_idle_timeout;
    }
    const bool bg_path = !draining &&
                         cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
                         writes_.size() >= cfg_.bg_write_min;
    // Backgrounded writes stall at the in-flight cap until a program pulse
    // finishes; expired entries are erased lazily by tick() and count as
    // free slots already.
    Cycle bg_gate = 0;
    if (bg_path) {
      std::uint64_t live = 0;
      Cycle earliest_done = kNeverCycle;
      for (Cycle d : write_done_times_) {
        if (d > now) {
          ++live;
          earliest_done = std::min(earliest_done, d);
        }
      }
      if (live >= cfg_.bg_write_inflight_max) bg_gate = earliest_done;
    }
    const Cycle bus_write_ready =
        bus_.earliest_start(t0 + timing_.tCWD) - timing_.tCWD;
    for (std::uint64_t b = 0; b < nbanks; ++b) {
      const BankCand& c = bank_cand_[b];
      if (draining || idle_path) {
        consider(std::max(c.write_plain, idle_gate));
        consider(std::max({c.write_flagged, bus_write_ready, idle_gate}));
      }
      if (bg_path) {
        consider(std::max(c.write_bg_plain, bg_gate));
        consider(std::max({c.write_bg_flagged, bus_write_ready, bg_gate}));
      }
      if (next == t0) return t0;
    }
  }
  return next;
}

template <typename BankT>
Cycle ControllerT<BankT>::next_event_reference(Cycle now) const {
  // The pre-index scan, preserved verbatim over the global FIFO lists.
  // Every clause mirrors one enabling condition of tick()/try_issue(); a
  // condition that can only flip through an enqueue or through another
  // event (e.g. a read leaving the queue clears a write conflict) needs no
  // clause of its own, because the driver re-evaluates after every enqueue
  // and every wake. The one exception is the write-queue drain latch: its
  // hysteresis makes the flip cycle itself scheduling-relevant state, so a
  // pending flip forces a wake at t0 (matching next_event_indexed).
  Cycle next = kNeverCycle;
  const Cycle t0 = now + 1;
  if (writes_.drain_update_pending()) return t0;
  const auto consider = [&](Cycle c) {
    next = std::min(next, std::max(c, t0));
  };

  for (const InFlight& fl : inflight_reads_) {
    consider(fl.done);
    if (next == t0) return t0;  // no earlier actionable cycle exists
  }

  // Queued reads, column path (same sticky bus_blocked rule as above).
  const Cycle bus_read_ready =
      bus_.earliest_start(t0 + timing_.tCAS) - timing_.tCAS;
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    const mem::MemRequest& r = rpool_[static_cast<std::size_t>(s)].req;
    const BankT& bank = bank_of(r.addr);
    if (bank.segments_sensed(r.addr)) {
      Cycle c = bank.earliest_column(r.addr, OpType::kRead, t0);
      if (r.bus_blocked) c = std::max(c, bus_read_ready);
      consider(c);
      if (next == t0) return t0;
    }
    if (cfg_.policy == SchedulerPolicy::kFcfs) break;  // head-of-queue only
  }

  // Queued reads, activate path: same oldest-per-(bank,SAG) walk and
  // demand-aggregation as the read-activate selection.
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    if (!ridx_.is_group_head(s)) continue;
    const mem::DecodedAddr& a = rpool_[static_cast<std::size_t>(s)].req.addr;
    const BankT& bank = bank_of(a);
    if (bank.segments_sensed(a)) continue;
    std::uint64_t extra_cds = 0;
    if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented) {
      for (std::int32_t o = ridx_.queue_head(); o >= 0;
           o = ridx_.queue_next(o)) {
        const mem::DecodedAddr& oa =
            rpool_[static_cast<std::size_t>(o)].req.addr;
        if (oa.same_row(a)) {
          for (std::uint64_t i = 0; i < oa.cd_count; ++i) {
            extra_cds |= 1ULL << (oa.cd + i);
          }
        }
      }
    }
    consider(bank.earliest_activate(a, nvm::ActPurpose::kRead, t0, extra_cds));
    if (next == t0) return t0;
    if (cfg_.policy == SchedulerPolicy::kFcfs) break;  // blocks the queue
  }

  if (!writes_.empty()) {
    const bool draining = writes_.draining();
    const bool idle_path =
        !draining && ridx_.empty() && inflight_reads_.empty();
    Cycle idle_gate = 0;
    if (idle_path && writes_.size() < cfg_.wq_low) {
      idle_gate = last_read_activity_ + cfg_.drain_idle_timeout;
    }
    const bool bg_path = !draining &&
                         cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
                         writes_.size() >= cfg_.bg_write_min;
    Cycle bg_gate = 0;
    if (bg_path) {
      std::uint64_t live = 0;
      Cycle earliest_done = kNeverCycle;
      for (Cycle d : write_done_times_) {
        if (d > now) {
          ++live;
          earliest_done = std::min(earliest_done, d);
        }
      }
      if (live >= cfg_.bg_write_inflight_max) bg_gate = earliest_done;
    }
    if (draining || idle_path || bg_path) {
      const Cycle bus_write_ready =
          bus_.earliest_start(t0 + timing_.tCWD) - timing_.tCWD;
      for (std::int32_t s = writes_.first(); s >= 0; s = writes_.next(s)) {
        const mem::MemRequest& w = writes_.at(s);
        const bool oldest_in_group = widx_.is_group_head(s);
        const BankT& bank = bank_of(w.addr);
        Cycle c;
        if (bank.row_open(w.addr)) {
          c = bank.earliest_column(w.addr, OpType::kWrite, t0);
          // Same sticky-flag rule as the read column path.
          if (w.bus_blocked) c = std::max(c, bus_write_ready);
        } else if (oldest_in_group) {
          c = bank.earliest_activate(w.addr, nvm::ActPurpose::kWrite, t0);
        } else {
          continue;  // only the oldest write per SAG may re-activate
        }
        if (draining || idle_path) consider(std::max(c, idle_gate));
        if (bg_path && !write_conflicts_with_reads_reference(w.addr)) {
          const Cycle guard =
              sag_last_read_[sag_group(w.addr)] + cfg_.bg_write_guard;
          consider(std::max({c, bg_gate, guard}));
        }
        if (next == t0) return t0;
      }
    }
  }
  return next;
}

template <typename BankT>
Cycle ControllerT<BankT>::next_event_internal(Cycle now) const {
  if (cfg_.policy == SchedulerPolicy::kFcfs) {
    // FCFS read scans break at the queue head — not decomposable into
    // per-bank minima; the reference walk is already O(small) there.
    return next_event_reference(now);
  }
  const Cycle next = next_event_indexed(now);
  if (cross_check_ && next != next_event_reference(now)) {
    detail::throw_divergence("next_event");
  }
  return next;
}

template <typename BankT>
Cycle ControllerT<BankT>::next_event(Cycle now) const {
  if (!completed_.empty()) return now + 1;
  return next_event_internal(now);
}

}  // namespace fgnvm::sched
