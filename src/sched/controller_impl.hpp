// ControllerT member definitions. Included only by TUs that explicitly
// instantiate the template (controller.cpp for the shipped bank types) —
// user code sees controller.hpp's extern template declarations instead.
// BankT must be complete wherever this header is instantiated.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "sched/controller.hpp"

namespace fgnvm::sched {

namespace detail {

/// True when BankT exposes the decomposed column probe (column_base_key /
/// column_fold_key, see FgNvmBank): the row-list scans then hoist the
/// member-independent base out of the walk and fold only the per-member CD
/// locks inside it. The generic ControllerT<nvm::Bank> instantiation keeps
/// the one-shot keyed probe — decomposability is a property of the concrete
/// timing model, not of the interface.
template <typename BankT>
concept kDecomposedColumnProbe = requires(const BankT& bk) {
  bk.column_base_key(std::uint64_t{0}, OpType::kRead, Cycle{0});
  bk.column_fold_key(std::uint64_t{0}, OpType::kRead, Cycle{0});
};

}  // namespace detail

template <typename BankT>
ControllerT<BankT>::ControllerT(const mem::MemGeometry& geometry,
                                const mem::TimingParams& timing,
                                const ControllerConfig& cfg,
                                const BankFactory& make_bank)
    : geo_(geometry),
      timing_(timing),
      cfg_(cfg),
      bus_(cfg.bus_lanes),
      writes_(cfg.write_queue_cap, cfg.wq_high, cfg.wq_low,
              geometry.line_bytes) {
  const std::uint64_t n = geo_.ranks_per_channel * geo_.banks_per_rank;
  banks_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) banks_.push_back(make_bank());
  typed_.reserve(n);
  for (const auto& b : banks_) {
    if constexpr (std::is_same_v<BankT, nvm::Bank>) {
      typed_.push_back(b.get());
    } else {
      auto* t = dynamic_cast<BankT*>(b.get());
      if (t == nullptr) {
        throw std::runtime_error(
            "ControllerT: bank factory produced a bank that is not the "
            "instantiated concrete type");
      }
      typed_.push_back(t);
    }
  }
  sag_last_read_.assign(n * geo_.num_sags, 0);

  // Read slot pool: fully sized from the configured queue depth so slots
  // never move or reallocate mid-run (rpool_base_ guards that invariant).
  rpool_.resize(cfg_.read_queue_cap);
  rpool_base_ = rpool_.data();
  rfree_.reserve(cfg_.read_queue_cap);
  for (std::uint64_t i = 0; i < cfg_.read_queue_cap; ++i) {
    rfree_.push_back(static_cast<std::int32_t>(cfg_.read_queue_cap - 1 - i));
  }
  ridx_.init(cfg_.read_queue_cap, n, geo_.num_sags, geo_.num_cds);
  widx_.init(cfg_.write_queue_cap, n, geo_.num_sags, geo_.num_cds);

  bank_cand_.assign(n, BankCand{});
  group_rcand_.assign(n * geo_.num_sags, GroupReadCand{});
  group_wcand_.assign(n * geo_.num_sags, GroupWriteCand{});
  bank_dirty_.assign(n, 0);
  bank_pure_.reserve(n);
  for (const auto& b : banks_) bank_pure_.push_back(b->pure_timing() ? 1 : 0);
  all_pure_ = true;
  for (const std::uint8_t p : bank_pure_) all_pure_ = all_pure_ && p != 0;

  inflight_reads_.reserve(cfg_.read_queue_cap);
  completed_.reserve(cfg_.read_queue_cap);
  write_done_times_.reserve(cfg_.bg_write_inflight_max + 1);
  scratch_flags_.reserve(cfg_.read_queue_cap + cfg_.write_queue_cap);
  scratch_ref_flags_.reserve(cfg_.read_queue_cap + cfg_.write_queue_cap);
  scratch_cands_.reserve(cfg_.read_queue_cap + cfg_.write_queue_cap);

  cross_check_ = detail::paranoid_env();

  // Analytic phase engine (DESIGN.md §12): on by default, FGNVM_PHASE_ENGINE=0
  // forces eager event-chain ticking (CI covers both settings).
  if (const char* e = std::getenv("FGNVM_PHASE_ENGINE")) {
    phase_enabled_ = !(e[0] == '0' && e[1] == '\0');
  }
}

template <typename BankT>
std::uint64_t ControllerT<BankT>::sag_group(const mem::DecodedAddr& a) const {
  return (a.rank * geo_.banks_per_rank + a.bank) * geo_.num_sags + a.sag;
}

template <typename BankT>
BankT& ControllerT<BankT>::bank_of(const mem::DecodedAddr& a) {
  return *typed_[a.rank * geo_.banks_per_rank + a.bank];
}

template <typename BankT>
const BankT& ControllerT<BankT>::bank_of(const mem::DecodedAddr& a) const {
  return *typed_[a.rank * geo_.banks_per_rank + a.bank];
}

template <typename BankT>
const mem::DecodedAddr& ControllerT<BankT>::read_probe_addr(
    std::int32_t slot, mem::DecodedAddr& tmp) const {
  if constexpr (kLeanProbes) {
    tmp.row = ridx_.row_of(slot);
    tmp.sag = ridx_.sag(slot);
    tmp.cd = ridx_.cd(slot);
    tmp.cd_count = ridx_.cd_count_of(slot);
    return tmp;
  } else {
    return rpool_[static_cast<std::size_t>(slot)].req.addr;
  }
}

template <typename BankT>
const mem::DecodedAddr& ControllerT<BankT>::write_probe_addr(
    std::int32_t slot, mem::DecodedAddr& tmp) const {
  if constexpr (kLeanProbes) {
    tmp.row = widx_.row_of(slot);
    tmp.sag = widx_.sag(slot);
    tmp.cd = widx_.cd(slot);
    tmp.cd_count = widx_.cd_count_of(slot);
    return tmp;
  } else {
    return writes_.at(slot).addr;
  }
}

template <typename BankT>
std::int32_t ControllerT<BankT>::alloc_read_slot() {
  assert(!rfree_.empty());
  assert(rpool_.data() == rpool_base_ && "read pool reallocated mid-run");
  const std::int32_t slot = rfree_.back();
  rfree_.pop_back();
  rpool_[static_cast<std::size_t>(slot)].live = true;
  return slot;
}

template <typename BankT>
void ControllerT<BankT>::free_read_slot(std::int32_t slot) {
  rpool_[static_cast<std::size_t>(slot)].live = false;
  rfree_.push_back(slot);
}

template <typename BankT>
bool ControllerT<BankT>::can_accept(OpType op) const {
  if (op == OpType::kRead) return ridx_.size() < cfg_.read_queue_cap;
  return !writes_.full();
}

template <typename BankT>
void ControllerT<BankT>::enqueue(mem::MemRequest req, Cycle now) {
  req.arrival = now;
  req.sched_seq = seq_counter_++;
  if (req.is_read()) {
    if (writes_.covers(req.addr.addr)) {
      // Store-to-load forwarding from the write queue: served next cycle.
      req.completion = now + 1;
      completed_.push_back(req);
      bump(h_reads_forwarded_, "reads.forwarded");
      if (!d_read_latency_) {
        d_read_latency_ = &stats_.distribution_ref("read_latency");
      }
      d_read_latency_->add(1.0);
      if (obs_) obs_->on_forwarded();
      return;
    }
    if (ridx_.size() >= cfg_.read_queue_cap) {
      throw std::runtime_error("Controller: read queue overflow");
    }
    if (bank_of(req.addr).segments_sensed(req.addr)) {
      bump(h_reads_row_hit_, "reads.row_hit_arrival");
    }
    const std::int32_t slot = alloc_read_slot();
    rpool_[static_cast<std::size_t>(slot)].req = req;
    const std::uint64_t b = bank_linear(req.addr);
    ridx_.insert(slot, b, req.addr, req.sched_seq);
    mark_bank_dirty(b);
    last_read_activity_ = now;
    sag_last_read_[sag_group(req.addr)] = now;
    bump(h_reads_accepted_, "reads.accepted");
    if (obs_) obs_->on_enqueue(req, now);
  } else {
    const std::int32_t slot = writes_.add_slot(req);
    if (slot < 0) {
      bump(h_writes_coalesced_, "writes.coalesced");
      if (obs_) obs_->on_coalesced();
    } else {
      const std::uint64_t b = bank_linear(req.addr);
      widx_.insert(slot, b, req.addr, req.sched_seq);
      mark_bank_dirty(b);
      bump(h_writes_accepted_, "writes.accepted");
      if (obs_) obs_->on_enqueue(req, now);
    }
  }
}

template <typename BankT>
void ControllerT<BankT>::maybe_close_row(const mem::DecodedAddr& a, Cycle now) {
  if (cfg_.page_policy != PagePolicy::kClosed) return;
  const std::uint64_t b = bank_linear(a);
  const bool close = ridx_.row_count(b, a.row) == 0 &&
                     widx_.row_count(b, a.row) == 0;
  if (cross_check_) {
    bool ref = true;
    for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
      if (rpool_[static_cast<std::size_t>(s)].req.addr.same_row(a)) {
        ref = false;
        break;
      }
    }
    for (std::int32_t s = writes_.first(); ref && s >= 0; s = writes_.next(s)) {
      if (writes_.at(s).addr.same_row(a)) ref = false;
    }
    if (close != ref) detail::throw_divergence("row-occupancy (maybe_close_row)");
  }
  if (!close) return;  // still wanted
  bank_of(a).close_row(a, now);
  bump(h_cmd_close_row_, "cmd.close_row");
  mark_bank_dirty(b);
}

template <typename BankT>
bool ControllerT<BankT>::write_conflicts_with_reads_reference(
    const mem::DecodedAddr& w) const {
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    const mem::DecodedAddr& a = rpool_[static_cast<std::size_t>(s)].req.addr;
    if (!a.same_bank(w)) continue;
    if (a.sag == w.sag) return true;
    // CD range overlap check.
    const std::uint64_t a_lo = a.cd, a_hi = a.cd + a.cd_count;
    const std::uint64_t w_lo = w.cd, w_hi = w.cd + w.cd_count;
    if (a_lo < w_hi && w_lo < a_hi) return true;
  }
  return false;
}

template <typename BankT>
bool ControllerT<BankT>::write_conflicts_with_reads(
    const mem::DecodedAddr& w) const {
  const std::uint64_t b = bank_linear(w);
  const bool conflict = ridx_.group_count(b * geo_.num_sags + w.sag) > 0 ||
                        ridx_.cd_overlap(b, w.cd, w.cd_count);
  if (cross_check_ && conflict != write_conflicts_with_reads_reference(w)) {
    detail::throw_divergence("SAG/CD conflict test");
  }
  return conflict;
}

// ---------------------------------------------------------------------------
// Read column selection.
//
// Within one selection pass every read candidate probes the bus at the same
// cycle (now + tCAS), so bus availability is uniform across candidates and
// the pre-index arrival-order scan reduces to: bus free -> the oldest
// bank-ready (sensed, column-timing met) read wins; bus busy -> every
// bank-ready read earns the sticky bus_blocked flag and nothing issues.
// Bank-ready reads are exactly the members of the open-row lists of the
// non-empty (bank, SAG) groups (sensed implies open row), so the indexed
// scan touches only eligible rows.
// ---------------------------------------------------------------------------

template <typename BankT>
std::int32_t ControllerT<BankT>::select_read_column_reference(
    Cycle now, std::vector<std::int32_t>& to_flag) const {
  to_flag.clear();
  const Cycle data_start = now + timing_.tCAS;
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    const mem::MemRequest& req = rpool_[static_cast<std::size_t>(s)].req;
    const BankT& bank = bank_of(req.addr);
    if (!bank.segments_sensed(req.addr)) {
      if (cfg_.policy == SchedulerPolicy::kFcfs) return -1;
      continue;
    }
    if (bank.earliest_column(req.addr, OpType::kRead, now) > now) {
      if (cfg_.policy == SchedulerPolicy::kFcfs) return -1;
      continue;
    }
    if (!bus_.available(data_start)) {
      to_flag.push_back(s);
      if (cfg_.policy == SchedulerPolicy::kFcfs) return -1;
      continue;
    }
    return s;
  }
  return -1;
}

template <typename BankT>
std::int32_t ControllerT<BankT>::select_read_column_indexed(
    Cycle now, std::vector<std::int32_t>& to_flag) const {
  to_flag.clear();
  if (ridx_.empty()) return -1;
  const Cycle data_start = now + timing_.tCAS;
  const bool bus_free = bus_.available(data_start);
  // O(1) out: no bank has a read column candidate due yet, so there is
  // nothing to issue and nothing to (re-)flag. The flagged minimum stays in
  // the fold because the reference scan re-flags already-flagged bank-ready
  // candidates (a no-op on state, but part of the compared flag lists).
  refresh_global();
  if (global_valid_) {
    const Cycle due = std::min(global_cand_.read_col_plain,
                               global_cand_.read_col_flagged);
    if (due > now) return -1;
  }
  if (cfg_.policy == SchedulerPolicy::kFcfs) {
    // FCFS examines the queue head only.
    const std::int32_t s = ridx_.queue_head();
    const BankT& bank = *typed_[ridx_.bank_of(s)];
    if (!bank.segments_sensed_key(ridx_.sag(s), ridx_.row_of(s),
                                  ridx_.cds(s))) {
      return -1;
    }
    if (bank.earliest_column_key(ridx_.sag(s), ridx_.cds(s), OpType::kRead,
                                 now) > now) {
      return -1;
    }
    if (!bus_.available(data_start)) {
      to_flag.push_back(s);
      return -1;
    }
    return s;
  }
  const bool bus_ok = bus_free;
  if (bus_ok) {
    // Fast path: the global queue head is min-seq over every candidate, so
    // if it is bank-ready it wins outright (and with the bus free nothing
    // gets flagged). This is the common case for a row-hitting read stream.
    const std::int32_t s = ridx_.queue_head();
    const BankT& bank = *typed_[ridx_.bank_of(s)];
    if (bank.segments_sensed_key(ridx_.sag(s), ridx_.row_of(s),
                                 ridx_.cds(s)) &&
        bank.earliest_column_key(ridx_.sag(s), ridx_.cds(s), OpType::kRead,
                                 now) <= now) {
      return s;
    }
  }
  std::int32_t winner = -1;
  std::uint64_t winner_seq = ~0ULL;
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    // A clean pure-timing bank's cached candidates are exact: if neither
    // the plain nor the flagged column minimum has arrived yet, no member
    // of this bank can issue (or be (re-)flagged) at `now`.
    const bool cand_exact = !bank_dirty_[b] && bank_pure_[b];
    if (cand_exact) {
      const Cycle due = std::min(bank_cand_[b].read_col_plain,
                                 bank_cand_[b].read_col_flagged);
      if (due > now) continue;
    }
    const BankT& bank = *typed_[b];
    for (const std::uint32_t g : ridx_.active_groups_of_bank(b)) {
      // Same pruning, one group finer, off the per-group slice the
      // recompute walk caches alongside the bank minima.
      if (cand_exact) {
        const GroupReadCand& gc = group_rcand_[g];
        if (std::min(gc.col_plain, gc.col_flagged) > now) continue;
      }
      // With the bus free nothing gets flagged, and every member of the
      // group is younger than its head — a head already younger than the
      // winner rules out the whole group before any bank probing.
      if (bus_ok && ridx_.seq(ridx_.group_head(g)) >= winner_seq) continue;
      const std::uint64_t sag = g % geo_.num_sags;
      const std::uint64_t row = bank.open_row_of(sag);
      if (row == kInvalidAddr) continue;
      // Hoist the member-independent half of the column probe; a member's
      // earliest column is >= the base, so a late base rules out the whole
      // group (both as winner and as flag candidates) in one check.
      [[maybe_unused]] Cycle col_base = 0;
      if constexpr (detail::kDecomposedColumnProbe<BankT>) {
        col_base = bank.column_base_key(sag, OpType::kRead, now);
        if (col_base > now) continue;
      }
      for (std::int32_t s = ridx_.row_head(b, row); s >= 0;
           s = ridx_.row_next(s)) {
        ridx_.prefetch(ridx_.row_next(s));
        // With the bus free nothing gets flagged, so younger-than-winner
        // members can skip the timing probes outright. Probes are keyed by
        // the index's SoA image; a SAG is a contiguous row range, so every
        // (bank, row) list member shares the group's SAG.
        if (bus_ok && ridx_.seq(s) >= winner_seq) continue;
        if (!bank.segments_sensed_key(sag, row, ridx_.cds(s))) continue;
        if constexpr (detail::kDecomposedColumnProbe<BankT>) {
          if (bank.column_fold_key(ridx_.cds(s), OpType::kRead, col_base) >
              now) {
            continue;
          }
        } else {
          if (bank.earliest_column_key(sag, ridx_.cds(s), OpType::kRead,
                                       now) > now) {
            continue;
          }
        }
        if (bus_ok) {
          winner_seq = ridx_.seq(s);
          winner = s;
        } else {
          to_flag.push_back(s);
        }
      }
    }
  }
  return winner;
}

template <typename BankT>
void ControllerT<BankT>::verify_pick(const char* what, bool same_pick,
                                     std::vector<std::int32_t>& flags,
                                     std::vector<std::int32_t>& ref_flags) const {
  std::sort(flags.begin(), flags.end());
  std::sort(ref_flags.begin(), ref_flags.end());
  if (!same_pick || flags != ref_flags) detail::throw_divergence(what);
}

template <typename BankT>
void ControllerT<BankT>::apply_read_flags(
    const std::vector<std::int32_t>& slots) {
  for (const std::int32_t s : slots) {
    mem::MemRequest& req = rpool_[static_cast<std::size_t>(s)].req;
    if (!req.bus_blocked) {
      req.bus_blocked = true;
      ridx_.set_flag(s, true);
      mark_bank_dirty(bank_linear(req.addr));
    }
  }
}

template <typename BankT>
void ControllerT<BankT>::apply_write_flags(
    const std::vector<std::int32_t>& slots) {
  for (const std::int32_t s : slots) {
    mem::MemRequest& w = writes_.at_mut(s);
    if (!w.bus_blocked) {
      w.bus_blocked = true;
      widx_.set_flag(s, true);
      mark_bank_dirty(bank_linear(w.addr));
    }
  }
}

template <typename BankT>
bool ControllerT<BankT>::try_issue_read_column(Cycle now) {
  const std::int32_t slot = select_read_column_indexed(now, scratch_flags_);
  if (cross_check_) {
    const std::int32_t ref =
        select_read_column_reference(now, scratch_ref_flags_);
    verify_pick("read-column selection", slot == ref, scratch_flags_,
                scratch_ref_flags_);
  }
  // Sticky flags, counted once at issue: "bursts delayed by bus contention".
  // next_event folds bus availability into the candidate of a flagged read,
  // so the event loop need not revisit busy cycles.
  apply_read_flags(scratch_flags_);
  if (slot < 0) return false;
  commit_read_column(slot, now);
  return true;
}

template <typename BankT>
void ControllerT<BankT>::commit_read_column(std::int32_t slot, Cycle now) {
  const mem::MemRequest req = rpool_[static_cast<std::size_t>(slot)].req;
  BankT& bank = bank_of(req.addr);
  const Cycle data_start = now + timing_.tCAS;
  if (req.bus_blocked) bump(h_bus_col_conflicts_, "bus.column_conflicts");
  const Cycle burst_start = bank.issue_column(req.addr, OpType::kRead, now);
  assert(burst_start == data_start);
  (void)burst_start;
  bus_.reserve(data_start, timing_.tBURST);
  if (obs_) obs_->on_read_burst(req.id, now, data_start);
  inflight_reads_.push_back(InFlight{req, data_start + timing_.tBURST});
  sag_last_read_[sag_group(req.addr)] = now;
  const std::uint64_t b = bank_linear(req.addr);
  ridx_.remove(slot, b);
  free_read_slot(slot);
  mark_bank_dirty(b);
  bump(h_cmd_read_, "cmd.read");
  maybe_close_row(req.addr, now);
}

// ---------------------------------------------------------------------------
// Read activate selection. Per (bank, sag), only the *oldest* queued read
// may trigger an ACT; this both mirrors the per-SAG row-latch (one pending
// row per SAG) and guarantees the oldest request in a SAG always makes
// progress (no livelock from row-buffer thrashing). The oldest per group is
// the group-list head, so the indexed scan walks the heads of the non-empty
// groups in arrival order instead of the whole queue, and demand
// aggregation reads the (bank, row) list instead of re-scanning the queue
// per head.
// ---------------------------------------------------------------------------

template <typename BankT>
auto ControllerT<BankT>::select_read_activate_reference(Cycle now) const
    -> ActPick {
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    if (!ridx_.is_group_head(s)) continue;  // not oldest in its (bank, SAG)
    const mem::DecodedAddr& a = rpool_[static_cast<std::size_t>(s)].req.addr;
    const BankT& bank = bank_of(a);
    if (bank.segments_sensed(a)) continue;  // waiting on column, not ACT
    std::uint64_t extra_cds = 0;
    if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented) {
      // Demand-aggregated partial activation: one ACT senses every CD that
      // queued reads to this same row already want (the per-CD CSLs are
      // one-hot, so several can be enabled in a single activation).
      for (std::int32_t o = ridx_.queue_head(); o >= 0;
           o = ridx_.queue_next(o)) {
        const mem::DecodedAddr& oa =
            rpool_[static_cast<std::size_t>(o)].req.addr;
        if (oa.same_row(a)) {
          for (std::uint64_t i = 0; i < oa.cd_count; ++i) {
            extra_cds |= 1ULL << (oa.cd + i);
          }
        }
      }
    }
    if (bank.earliest_activate(a, nvm::ActPurpose::kRead, now, extra_cds) <=
        now) {
      return {s, extra_cds};
    }
    if (cfg_.policy == SchedulerPolicy::kFcfs) return {-1, 0};
  }
  return {-1, 0};
}

template <typename BankT>
auto ControllerT<BankT>::select_read_activate_indexed(Cycle now) const
    -> ActPick {
  if (cfg_.policy == SchedulerPolicy::kFcfs) {
    // FCFS bails out at the first group head that cannot activate —
    // inherently an arrival-order walk, so it runs on the queue list.
    return select_read_activate_reference(now);
  }
  // Selection is side-effect-free, so "first in arrival order that passes"
  // is "min sched_seq among all heads that pass" — no need to sort the
  // heads, just track the running minimum and prune heads that are already
  // younger than the best passing candidate. The global queue head (min-seq
  // over everything, and always its group's head) gets a first look: if it
  // passes, the group scan is skipped entirely.
  if (ridx_.empty()) return {-1, 0};
  // O(1) out: no group head anywhere can activate yet.
  refresh_global();
  if (global_valid_ && global_cand_.read_act > now) return {-1, 0};
  ActPick pick{-1, 0};
  std::uint64_t winner_seq = ~0ULL;
  const bool aug = cfg_.policy == SchedulerPolicy::kFrfcfsAugmented;
  {
    const std::int32_t s = ridx_.queue_head();
    const std::uint64_t b = ridx_.bank_of(s);
    const std::uint64_t sag = ridx_.sag(s);
    const std::uint64_t row = ridx_.row_of(s);
    const BankT& bank = *typed_[b];
    if (!bank.segments_sensed_key(sag, row, ridx_.cds(s))) {
      // Demand-aggregated partial activation: the maintained (bank, row)
      // CD mask is exactly the OR the former list walk computed.
      const std::uint64_t extra_cds = aug ? ridx_.row_cds(b, row) : 0;
      if (bank.earliest_activate_key(sag, row, ridx_.cds(s), extra_cds,
                                     nvm::ActPurpose::kRead, now) <= now) {
        return {s, extra_cds};
      }
    }
  }
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    // Clean pure-timing banks with no ACT candidate due yet cannot win.
    const bool cand_exact = !bank_dirty_[b] && bank_pure_[b];
    if (cand_exact && bank_cand_[b].read_act > now) continue;
    const BankT& bank = *typed_[b];
    for (const std::uint32_t g : ridx_.active_groups_of_bank(b)) {
      const std::int32_t s = ridx_.group_head(g);
      if (ridx_.seq(s) >= winner_seq) continue;
      // The cached per-group ACT candidate replaces the sensed/activate
      // probes for groups whose head is not due yet.
      if (cand_exact && group_rcand_[g].act > now) continue;
      const std::uint64_t sag = ridx_.sag(s);
      const std::uint64_t row = ridx_.row_of(s);
      if (bank.segments_sensed_key(sag, row, ridx_.cds(s))) continue;
      const std::uint64_t extra_cds = aug ? ridx_.row_cds(b, row) : 0;
      if (bank.earliest_activate_key(sag, row, ridx_.cds(s), extra_cds,
                                     nvm::ActPurpose::kRead, now) <= now) {
        winner_seq = ridx_.seq(s);
        pick = {s, extra_cds};
      }
    }
  }
  return pick;
}

template <typename BankT>
bool ControllerT<BankT>::try_issue_read_activate(Cycle now) {
  const ActPick pick = select_read_activate_indexed(now);
  if (cross_check_ && cfg_.policy != SchedulerPolicy::kFcfs) {
    const ActPick ref = select_read_activate_reference(now);
    if (pick.slot != ref.slot || pick.extra_cds != ref.extra_cds) {
      detail::throw_divergence("read-activate selection");
    }
  }
  if (pick.slot < 0) return false;

  const mem::DecodedAddr& a =
      rpool_[static_cast<std::size_t>(pick.slot)].req.addr;
  BankT& bank = bank_of(a);
  // An underfetch re-sense is an ACT on the already-open row (some CDs
  // the queue wants were not sensed by the earlier activation).
  const bool underfetch = bank.row_open(a);
  bank.issue_activate(a, nvm::ActPurpose::kRead, now, pick.extra_cds);
  const std::uint64_t b = bank_linear(a);
  mark_bank_dirty(b);
  bump(h_cmd_act_read_, "cmd.act_read");
  if (obs_) {
    // Stamp the ACT on every queued read this activation now covers —
    // exactly the same-row requests, i.e. the (bank, row) list.
    for (std::int32_t o = ridx_.row_head(b, a.row); o >= 0;
         o = ridx_.row_next(o)) {
      const mem::MemRequest& other = rpool_[static_cast<std::size_t>(o)].req;
      if (bank.segments_sensed(other.addr)) {
        obs_->on_activate(other.id, now, underfetch);
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Write selection. As with reads, only the oldest write per (bank, SAG) may
// change that SAG's open row — otherwise queued writes to different rows of
// one SAG thrash the row latch and re-activate forever. In the pre-index
// arrival walk a write can only act (and only has side effects) when it is
// its group's head (ACT path) or targets its SAG's open row (column path);
// every other write is skipped with no effect. The indexed selection
// therefore gathers exactly those candidates — group heads plus open-row
// list members — and evaluates them in arrival (sched_seq) order with the
// unchanged per-write rules.
// ---------------------------------------------------------------------------

template <typename BankT>
auto ControllerT<BankT>::select_write_reference(
    Cycle now, bool background_only, std::vector<std::int32_t>& to_flag) const
    -> WritePick {
  to_flag.clear();
  const Cycle data_start = now + timing_.tCWD;
  for (std::int32_t s = writes_.first(); s >= 0; s = writes_.next(s)) {
    const mem::MemRequest& w = writes_.at(s);
    const bool oldest_in_group = widx_.is_group_head(s);
    if (background_only) {
      // A backgrounded write must not collide with queued reads (Section-4
      // SAG/CD constraint) nor park itself in a SAG the read stream is
      // actively using — a 150 ns program pulse there stalls the next burst.
      if (write_conflicts_with_reads_reference(w.addr)) continue;
      if (now < sag_last_read_[sag_group(w.addr)] + cfg_.bg_write_guard)
        continue;
    }
    const BankT& bank = bank_of(w.addr);
    if (!bank.row_open(w.addr)) {
      if (oldest_in_group &&
          bank.earliest_activate(w.addr, nvm::ActPurpose::kWrite, now) <= now) {
        return {s, /*activate=*/true};
      }
      continue;
    }
    if (bank.earliest_column(w.addr, OpType::kWrite, now) > now) continue;
    if (!bus_.available(data_start)) {
      to_flag.push_back(s);
      continue;
    }
    return {s, /*activate=*/false};
  }
  return {-1, false};
}

template <typename BankT>
auto ControllerT<BankT>::select_write_indexed(
    Cycle now, bool background_only, std::vector<std::int32_t>& to_flag) const
    -> WritePick {
  to_flag.clear();
  if (widx_.empty()) return {-1, false};
  const Cycle data_start = now + timing_.tCWD;
  const bool bus_ok = bus_.available(data_start);
  // O(1) out: no write (ACT or column, plain or flagged) is due yet on any
  // bank under this drain mode's filters — nothing to pick, nothing to
  // (re-)flag.
  refresh_global();
  if (global_valid_) {
    const BankCand& g = global_cand_;
    const Cycle m = background_only
                        ? std::min(g.write_bg_plain, g.write_bg_flagged)
                        : std::min(g.write_plain, g.write_flagged);
    if (m > now) return {-1, false};
  }
  // As in read selection, the pass is side-effect-free and bus availability
  // is uniform across candidates, so the arrival-order winner is the min
  // sched_seq passing candidate and no gather/sort is needed. The
  // background-write SAG-conflict and read-recency-guard tests depend only
  // on the (bank, SAG) group, so they filter whole groups before any
  // per-write work; only the CD-overlap test is per-write.
  {
    // Fast path: the write-queue head is min-seq over every candidate and
    // always its group's head, so if it passes it wins outright — and no
    // flag can precede the arrival-order winner, so to_flag stays empty.
    const std::int32_t h = widx_.queue_head();
    const std::uint64_t b = widx_.bank_of(h);
    const std::uint64_t sag = widx_.sag(h);
    const std::uint64_t row = widx_.row_of(h);
    const std::uint64_t g = b * geo_.num_sags + sag;
    const bool bg_ok =
        !background_only ||
        (ridx_.group_count(g) == 0 &&
         now >= sag_last_read_[g] + cfg_.bg_write_guard &&
         !ridx_.cd_overlap_mask(b, widx_.cds(h)));
    if (bg_ok) {
      const BankT& bank = *typed_[b];
      if (bank.open_row_of(sag) != row) {
        if (bank.earliest_activate_key(sag, row, 0, 0,
                                       nvm::ActPurpose::kWrite, now) <= now) {
          return {h, /*activate=*/true};
        }
      } else if (bus_ok && bank.earliest_column_key(sag, widx_.cds(h),
                                                    OpType::kWrite, now) <=
                               now) {
        return {h, /*activate=*/false};
      }
    }
  }
  WritePick pick{-1, false};
  std::uint64_t winner_seq = ~0ULL;
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    // Clean pure-timing banks whose cached write minima (guard folded for
    // the background path) have not arrived yet cannot contribute a winner
    // or a flag.
    const bool cand_exact = !bank_dirty_[b] && bank_pure_[b];
    if (cand_exact) {
      const BankCand& c = bank_cand_[b];
      const Cycle m = background_only
                          ? std::min(c.write_bg_plain, c.write_bg_flagged)
                          : std::min(c.write_plain, c.write_flagged);
      if (m > now) continue;
    }
    const BankT& bank = *typed_[b];
    for (const std::uint32_t g : widx_.active_groups_of_bank(b)) {
      // Same pruning, one group finer: the recompute walk caches each
      // group's slice of the bank minima, so a not-yet-due group costs one
      // load instead of the row-hash probe and timing probes below.
      if (cand_exact) {
        const GroupWriteCand& gc = group_wcand_[g];
        const Cycle m = background_only
                            ? std::min(gc.bg_plain, gc.bg_flagged)
                            : std::min(gc.plain, gc.flagged);
        if (m > now) continue;
      }
      if (background_only) {
        // ridx_ and widx_ share the group-id space (bank * num_sags + sag),
        // and sag_group(w.addr) == g for every member of g.
        if (ridx_.group_count(g) > 0) continue;
        if (now < sag_last_read_[g] + cfg_.bg_write_guard) continue;
      }
      const std::int32_t head = widx_.group_head(g);
      // With the bus free nothing gets flagged, and the head is the group's
      // min seq — both the ACT candidate (the head itself) and every column
      // member need seq < winner_seq, so a late head rules out the group.
      if (bus_ok && widx_.seq(head) >= winner_seq) continue;
      // row_open(a) is open_row_of(a.sag) == a.row for every bank kind, and
      // all group members share the SAG — one probe covers the group.
      const std::uint64_t sag = g % geo_.num_sags;
      const std::uint64_t row = bank.open_row_of(sag);
      if (widx_.row_of(head) != row) {
        // Only the group head may activate; a head on the open row never
        // activates. (Younger group members on the open row are still
        // column candidates below.)
        if (widx_.seq(head) < winner_seq &&
            !(background_only &&
              ridx_.cd_overlap_mask(b, widx_.cds(head))) &&
            bank.earliest_activate_key(sag, widx_.row_of(head), 0, 0,
                                       nvm::ActPurpose::kWrite, now) <= now) {
          winner_seq = widx_.seq(head);
          pick = {head, /*activate=*/true};
        }
      }
      if (row == kInvalidAddr) continue;
      // Hoist the member-independent half of the column probe; a member's
      // earliest column is >= the base, so a late base rules out every
      // column candidate (winner or flag) in this group at once.
      [[maybe_unused]] Cycle col_base = 0;
      if constexpr (detail::kDecomposedColumnProbe<BankT>) {
        col_base = bank.column_base_key(sag, OpType::kWrite, now);
        if (col_base > now) continue;
      }
      for (std::int32_t s = widx_.row_head(b, row); s >= 0;
           s = widx_.row_next(s)) {
        widx_.prefetch(widx_.row_next(s));
        // With the bus free nothing gets flagged, so younger-than-winner
        // members can skip the timing probes outright. A SAG is a contiguous
        // row range, so every (bank, row) list member shares the group's SAG.
        if (bus_ok && widx_.seq(s) >= winner_seq) continue;
        if (background_only && ridx_.cd_overlap_mask(b, widx_.cds(s))) {
          continue;
        }
        if constexpr (detail::kDecomposedColumnProbe<BankT>) {
          if (bank.column_fold_key(widx_.cds(s), OpType::kWrite, col_base) >
              now) {
            continue;
          }
        } else {
          if (bank.earliest_column_key(sag, widx_.cds(s), OpType::kWrite,
                                       now) > now) {
            continue;
          }
        }
        if (!bus_ok) {
          to_flag.push_back(s);
        } else {
          winner_seq = widx_.seq(s);
          pick = {s, /*activate=*/false};
        }
      }
    }
  }
  // The reference arrival walk stops flagging at the winner (which, with
  // the bus busy, can only be an ACT), so drop flags younger than it. An
  // equal seq is impossible: a flagged write never wins.
  if (pick.slot >= 0 && !to_flag.empty()) {
    std::erase_if(to_flag, [&](std::int32_t s) {
      return widx_.seq(s) > winner_seq;
    });
  }
  return pick;
}

template <typename BankT>
bool ControllerT<BankT>::try_issue_write(Cycle now, bool background_only) {
  const WritePick pick =
      select_write_indexed(now, background_only, scratch_flags_);
  if (cross_check_) {
    const WritePick ref =
        select_write_reference(now, background_only, scratch_ref_flags_);
    verify_pick("write selection",
                pick.slot == ref.slot && pick.activate == ref.activate,
                scratch_flags_, scratch_ref_flags_);
  }
  apply_write_flags(scratch_flags_);
  if (pick.slot < 0) return false;

  if (pick.activate) {
    const mem::MemRequest& w = writes_.at(pick.slot);
    BankT& bank = bank_of(w.addr);
    bank.issue_activate(w.addr, nvm::ActPurpose::kWrite, now);
    mark_bank_dirty(bank_linear(w.addr));
    bump(h_cmd_act_write_, "cmd.act_write");
    if (obs_) obs_->on_activate(w.id, now, /*underfetch=*/false);
    return true;
  }

  commit_write_column(pick.slot, now, background_only);
  return true;
}

template <typename BankT>
void ControllerT<BankT>::commit_write_column(std::int32_t slot, Cycle now,
                                             bool background_only) {
  const mem::MemRequest w = writes_.at(slot);
  BankT& bank = bank_of(w.addr);
  const Cycle data_start = now + timing_.tCWD;
  if (w.bus_blocked) bump(h_bus_col_conflicts_, "bus.column_conflicts");
  const Cycle done = bank.issue_column(w.addr, OpType::kWrite, now);
  write_done_times_.push_back(done);
  bus_.reserve(data_start, timing_.tBURST);
  if (obs_) obs_->on_write_issue(w.id, now, done);
  const std::uint64_t b = bank_linear(w.addr);
  widx_.remove(slot, b);
  writes_.remove_slot(slot);
  mark_bank_dirty(b);
  bump(background_only ? h_cmd_write_bg_ : h_cmd_write_drain_,
       background_only ? "cmd.write_background" : "cmd.write_drain");
  bump(h_cmd_write_, "cmd.write");
  // Closed-page: the write's row closes once the program completes.
  if (cfg_.page_policy == PagePolicy::kClosed) maybe_close_row(w.addr, done);
}

template <typename BankT>
bool ControllerT<BankT>::try_issue(Cycle now, bool& write_done) {
  const bool draining = writes_.draining();
  const bool idle_reads = ridx_.empty();

  const auto issue_write = [&](bool background_only) {
    if (write_done) return false;
    if (try_issue_write(now, background_only)) {
      write_done = true;
      return true;
    }
    return false;
  };

  if (draining) {
    if (issue_write(/*background_only=*/false)) return true;
    if (try_issue_read_column(now)) return true;
    return try_issue_read_activate(now);
  }
  if (try_issue_read_column(now)) return true;
  if (try_issue_read_activate(now)) return true;
  // Count writes still programming (for the background in-flight cap).
  std::erase_if(write_done_times_, [&](Cycle done) { return done <= now; });
  if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
      writes_.size() >= cfg_.bg_write_min &&
      write_done_times_.size() < cfg_.bg_write_inflight_max) {
    // Backgrounded Writes: slip writes under pending reads whenever the
    // target (bank, SAG, CD) is disjoint from every queued read. The
    // occupancy floor preserves the coalescing window — draining writes the
    // moment they arrive forfeits merges with imminent rewrites.
    if (issue_write(/*background_only=*/true)) return true;
  }
  if (idle_reads && inflight_reads_.empty() && !writes_.empty()) {
    // Conventional opportunistic drain while the read stream is idle — but
    // only once enough writes accumulated or the stream has been quiet for
    // a while; dribbling single writes out eagerly trashes open rows the
    // read stream is about to revisit.
    const bool quiet =
        now >= last_read_activity_ + cfg_.drain_idle_timeout;
    if (writes_.size() >= cfg_.wq_low || quiet) {
      return issue_write(/*background_only=*/false);
    }
  }
  return false;
}

template <typename BankT>
void ControllerT<BankT>::retire_reads(Cycle now) {
  // Retire finished read bursts (in-flight vector order — issue order — so
  // the Welford latency accumulation stays bit-identical across drivers).
  for (auto it = inflight_reads_.begin(); it != inflight_reads_.end();) {
    if (it->done <= now) {
      it->req.completion = it->done;
      const double latency = static_cast<double>(it->done - it->req.arrival);
      if (!d_read_latency_) {
        d_read_latency_ = &stats_.distribution_ref("read_latency");
      }
      d_read_latency_->add(latency);
      if (!h_read_latency_hist_) {
        h_read_latency_hist_ = &stats_.histogram_ref("read_latency_hist");
      }
      h_read_latency_hist_->add(latency);
      if (obs_) obs_->on_read_complete(it->req.id, it->done);
      completed_.push_back(it->req);
      it = inflight_reads_.erase(it);
    } else {
      ++it;
    }
  }
}

template <typename BankT>
void ControllerT<BankT>::tick(Cycle now) {
  // Charge the span since the previous tick to each traced request's pending
  // cause before any state changes this cycle.
  if (obs_) obs_->close_spans(now);

  retire_reads(now);

  writes_.update_drain();
  bool write_done = false;
  for (std::uint64_t slot = 0; slot < cfg_.issue_width; ++slot) {
    if (!try_issue(now, write_done)) break;
  }

  if (obs_) observe_blocking(now);
}

template <typename BankT>
Cycle ControllerT<BankT>::advance_to(Cycle due, Cycle horizon) {
  // Exactly the serial lazy schedule restricted to this channel: in that
  // schedule the channel ticks at cycle w iff its cached due equals w, and
  // each tick re-arms due from next_event — i.e. the channel walks its own
  // event chain. Pending completions only short-circuit next_event to
  // "wake the caller", never enable an earlier command issue, so the chain
  // is computed with next_event_internal and the buffered completions are
  // delivered by the caller at the horizon (in channel order). Ticks the
  // serial schedule would run at completion-delivery cycles inside the
  // window are no-op ticks by the next_event contract and are skipped.
  //
  // Steady phases are replayed analytically (DESIGN.md §12): advance_phase
  // runs the same commit/retire code the eager tick would, then hands back
  // the next due cycle, so the fallback below sees a state bit-identical to
  // having ticked through the window.
  while (due < horizon) {
    const Cycle fast = advance_phase_impl(due, horizon, nullptr);
    if (fast > due) {
      due = fast;
      continue;
    }
    tick(due);
    due = next_event_internal(due);
  }
  return due;
}

template <typename BankT>
Cycle ControllerT<BankT>::advance_until_accept(Cycle due, OpType op,
                                               Cycle horizon) {
  // Same chain walk as advance_to, but the stopping condition is "capacity
  // for `op` freed up": the driver submits at (freeing tick) + 1, exactly
  // where the serial schedule would re-test can_accept before ticking.
  while (due < horizon && !can_accept(op)) {
    const Cycle fast = advance_phase_impl(due, horizon, &op);
    if (fast > due) {
      due = fast;
      continue;
    }
    tick(due);
    if (can_accept(op)) return due + 1;
    due = next_event_internal(due);
  }
  return due;
}

// ---------------------------------------------------------------------------
// Analytic phase engine (DESIGN.md §12). Each recognizer replays its phase's
// event chain with the shared commit/retire sequences — the exact mutations
// eager ticking performs — so state and stats stay bit-identical; the only
// thing skipped is the per-event tick/selection/next_event machinery that
// provably does nothing else in the phase. Contract: return `now` to
// decline, else a cycle > now that never overshoots the next actionable
// cycle (undershooting is safe: an early wake is a no-op tick).
// ---------------------------------------------------------------------------

template <typename BankT>
Cycle ControllerT<BankT>::advance_phase_impl(Cycle now, Cycle bound,
                                             const OpType* stop_accept) {
  if (!phase_enabled_ || phase_hold_ || obs_ != nullptr || now >= bound) {
    return now;
  }
  // A pending drain-latch flip must be applied by a real tick at now/t0.
  if (writes_.drain_update_pending()) return now;
  if (ridx_.empty() && widx_.empty()) {
    if (inflight_reads_.empty()) return now;  // fully idle — nothing to do
    return phase_retire_only(now, bound);
  }
  // The remaining phases reason about bank timing in closed form, which is
  // only sound when candidates clamp (pure_timing) — no refresh windows.
  if (!all_pure_) return now;
  if (ridx_.empty() && inflight_reads_.empty() && writes_.draining()) {
    return phase_write_drain(now, bound, stop_accept);
  }
  if (!ridx_.empty() && !writes_.draining()) {
    return phase_read_burst(now, bound, stop_accept);
  }
  return now;
}

// All-banks-idle-until-arrival: both queues empty, bursts in flight. The
// only events left are retirements; replay them and report the next one.
template <typename BankT>
Cycle ControllerT<BankT>::phase_retire_only(Cycle now, Cycle bound) {
  const std::size_t before = inflight_reads_.size();
  Cycle t = now;
  Cycle ret;
  for (;;) {
    Cycle min_done = kNeverCycle;
    for (const InFlight& fl : inflight_reads_) {
      min_done = std::min(min_done, fl.done);
    }
    if (min_done == kNeverCycle) {
      ret = kNeverCycle;  // chain dies: nothing queued, nothing in flight
      break;
    }
    const Cycle wake = std::max(min_done, t);
    if (wake >= bound) {
      ret = wake;
      break;
    }
    retire_reads(wake);
    t = wake + 1;
  }
  const std::size_t retired = before - inflight_reads_.size();
  if (retired > 0) {
    ++phase_stats_.retire_phases;
    phase_stats_.retire_events += retired;
  }
  return ret > now ? ret : now;
}

// Pure write-queue drain: watermark latch held, no reads queued or in
// flight, every queued write in one dense (bank, SAG) group on the open row
// and none bus-flagged. The only events are write column issues; per wake
// the arrival-order winner is the min-seq member among those whose column
// timing has come due (pure timing ⇒ candidates computed at the current
// position clamp identically at the wake cycle).
template <typename BankT>
Cycle ControllerT<BankT>::phase_write_drain(Cycle now, Cycle bound,
                                            const OpType* stop_accept) {
  if (widx_.empty() || widx_.flagged_count() != 0) return now;
  const std::int32_t head0 = widx_.queue_head();
  const mem::DecodedAddr& ha = writes_.at(head0).addr;
  const std::uint64_t b = bank_linear(ha);
  const std::uint64_t g = b * geo_.num_sags + ha.sag;
  if (widx_.group_count(g) != widx_.size()) return now;
  BankT& bank = *typed_[b];
  const std::uint64_t row = bank.open_row_of(ha.sag);
  if (row == kInvalidAddr || widx_.row_count(b, row) != widx_.size()) {
    return now;  // an off-row member would be an ACT candidate
  }

  std::uint64_t steps = 0;
  Cycle t = now;
  Cycle ret;
  mem::DecodedAddr tmp{};
  for (;;) {
    // Wake = min column candidate; winner = min-seq among those achieving
    // it (with pure timing, e(t) = max(t, e(0)), so the members ready at
    // the wake are exactly those whose e equals the minimum).
    Cycle best_e = kNeverCycle;
    std::int32_t winner = -1;
    std::uint64_t wseq = ~0ULL;
    for (std::int32_t s = widx_.row_head(b, row); s >= 0;
         s = widx_.row_next(s)) {
      const Cycle e =
          bank.earliest_column(write_probe_addr(s, tmp), OpType::kWrite, t);
      if (e < best_e || (e == best_e && widx_.seq(s) < wseq)) {
        best_e = e;
        winner = s;
        wseq = widx_.seq(s);
      }
    }
    const Cycle wake = best_e;
    if (wake >= bound) {
      ret = wake;  // the next chain cycle — beyond this window
      break;
    }
    if (!bus_.available(wake + timing_.tCWD)) {
      ret = wake;  // eager tick at wake sets the sticky flags
      break;
    }
    commit_write_column(winner, wake, /*background_only=*/false);
    ++steps;
    // Ends that require a real tick or the driver: the latch flip below the
    // low watermark, freed capacity the blocked driver waits on, or an empty
    // queue. wake+1 never overshoots: it is at most the next chain cycle.
    if (writes_.drain_update_pending() || widx_.empty() ||
        (stop_accept != nullptr && can_accept(*stop_accept))) {
      ret = wake + 1;
      break;
    }
    t = wake + 1;  // the write_done latch allows one write per tick
  }
  if (steps > 0) {
    ++phase_stats_.drain_phases;
    phase_stats_.drain_writes += steps;
  }
  return ret > now ? ret : now;
}

// Single-group row-hit read burst: every queued read sensed in one dense
// (bank, SAG) group on the open row, none bus-flagged, and the write side
// contributes no candidates (not draining; background path below its
// occupancy floor or disabled). Events are read column issues and
// retirements; each wake replays them in tick order (retire, then issue).
template <typename BankT>
Cycle ControllerT<BankT>::phase_read_burst(Cycle now, Cycle bound,
                                           const OpType* stop_accept) {
  if (ridx_.flagged_count() != 0) return now;
  if (!widx_.empty() && cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
      writes_.size() >= cfg_.bg_write_min) {
    return now;  // backgrounded writes are (or may become) eligible
  }
  const std::int32_t head0 = ridx_.queue_head();
  const mem::DecodedAddr& ha = rpool_[static_cast<std::size_t>(head0)].req.addr;
  const std::uint64_t b = bank_linear(ha);
  const std::uint64_t g = b * geo_.num_sags + ha.sag;
  if (ridx_.group_count(g) != ridx_.size()) return now;
  BankT& bank = *typed_[b];
  const std::uint64_t row = bank.open_row_of(ha.sag);
  if (row == kInvalidAddr || ridx_.row_count(b, row) != ridx_.size()) {
    return now;
  }
  mem::DecodedAddr tmp{};
  // Partial activation can leave an open-row member unsensed (an underfetch
  // re-sense — an ACT candidate); require the whole group sensed so column
  // issues are the only command events in the phase.
  for (std::int32_t s = ridx_.row_head(b, row); s >= 0; s = ridx_.row_next(s)) {
    if (!bank.segments_sensed(read_probe_addr(s, tmp))) return now;
  }

  const bool fcfs = cfg_.policy == SchedulerPolicy::kFcfs;
  std::uint64_t steps = 0;
  Cycle t = now;
  Cycle ret;
  for (;;) {
    Cycle min_done = kNeverCycle;
    for (const InFlight& fl : inflight_reads_) {
      min_done = std::min(min_done, fl.done);
    }
    // Column candidate: FCFS serves strictly in order (the queue head is
    // the only candidate); otherwise the min-seq member among those due.
    Cycle best_e = kNeverCycle;
    std::int32_t winner = -1;
    std::uint64_t wseq = ~0ULL;
    if (fcfs) {
      winner = ridx_.queue_head();
      best_e = bank.earliest_column(read_probe_addr(winner, tmp),
                                    OpType::kRead, t);
    } else {
      for (std::int32_t s = ridx_.row_head(b, row); s >= 0;
           s = ridx_.row_next(s)) {
        const Cycle e =
            bank.earliest_column(read_probe_addr(s, tmp), OpType::kRead, t);
        if (e < best_e || (e == best_e && ridx_.seq(s) < wseq)) {
          best_e = e;
          winner = s;
          wseq = ridx_.seq(s);
        }
      }
    }
    const Cycle wake = std::min(best_e, std::max(min_done, t));
    if (wake >= bound) {
      ret = wake;
      break;
    }
    if (min_done <= wake) retire_reads(wake);  // tick order: retire first
    if (best_e <= wake) {
      if (!bus_.available(wake + timing_.tCAS)) {
        ret = wake;  // eager tick at wake sets the sticky flags
        break;
      }
      commit_read_column(winner, wake);
      ++steps;
      if (ridx_.empty() ||
          (stop_accept != nullptr && can_accept(*stop_accept))) {
        ret = wake + 1;
        break;
      }
    }
    t = wake + 1;
  }
  if (steps > 0) {
    ++phase_stats_.burst_phases;
    phase_stats_.burst_reads += steps;
  }
  return ret > now ? ret : now;
}

template <typename BankT>
Cycle ControllerT<BankT>::advance_phase(Cycle now, Cycle bound) {
  const Cycle fast = advance_phase_impl(now, bound, nullptr);
  return fast > now ? fast : now;
}

template <typename BankT>
Cycle ControllerT<BankT>::completion_bound(Cycle now) const {
  if (!completed_.empty()) return now + 1;
  Cycle bound = kNeverCycle;
  for (const InFlight& fl : inflight_reads_) bound = std::min(bound, fl.done);
  if (!ridx_.empty()) {
    // A queued read's burst cannot start before the channel's next state
    // change (its column issue is a state change), so its completion is at
    // least next_event + tCAS + tBURST. No enqueues happen while the caller
    // waits, so store-to-load forwarding cannot create an earlier one.
    const Cycle ne = next_event_internal(now);
    if (ne != kNeverCycle) {
      bound = std::min(bound, ne + timing_.tCAS + timing_.tBURST);
    }
  }
  if (bound == kNeverCycle) return kNeverCycle;
  return std::max(bound, now + 1);
}

template <typename BankT>
void ControllerT<BankT>::observe_blocking(Cycle now) {
  using obs::BlockCause;
  // Post-issue classification: everything still queued here failed to issue
  // this tick; the bank state now reflects whatever did issue, so the cause
  // read off the bank is the one that will hold until the next event.
  bool head = true;
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    const mem::MemRequest& r = rpool_[static_cast<std::size_t>(s)].req;
    const mem::DecodedAddr& a = r.addr;
    const bool oldest = ridx_.is_group_head(s);
    if (cfg_.policy == SchedulerPolicy::kFcfs && !head) {
      // FCFS serves strictly in order: everything behind the head waits on
      // the queue discipline, whatever the banks look like.
      obs_->set_cause(r.id, BlockCause::kQueuePolicy, now);
      continue;
    }
    head = false;
    const BankT& bank = bank_of(a);
    BlockCause cause;
    if (bank.segments_sensed(a)) {
      cause = bank.column_block_cause(a, OpType::kRead, now);
      if (cause == BlockCause::kNone) {
        cause = bus_.available(now + timing_.tCAS) ? BlockCause::kQueuePolicy
                                                   : BlockCause::kBusConflict;
      }
    } else if (!oldest) {
      cause = BlockCause::kQueuePolicy;  // an older read owns this SAG's ACT
    } else {
      cause = bank.activate_block_cause(a, nvm::ActPurpose::kRead, now);
      if (cause == BlockCause::kNone) cause = BlockCause::kQueuePolicy;
    }
    obs_->set_cause(r.id, cause, now);
  }

  if (writes_.empty()) return;
  const bool draining = writes_.draining();
  const bool idle_path = !draining && ridx_.empty() &&
                         inflight_reads_.empty() &&
                         (writes_.size() >= cfg_.wq_low ||
                          now >= last_read_activity_ + cfg_.drain_idle_timeout);
  std::uint64_t live_writes = 0;
  for (const Cycle d : write_done_times_) live_writes += d > now ? 1 : 0;
  const bool bg_path = !draining &&
                       cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
                       writes_.size() >= cfg_.bg_write_min &&
                       live_writes < cfg_.bg_write_inflight_max;
  for (std::int32_t s = writes_.first(); s >= 0; s = writes_.next(s)) {
    const mem::MemRequest& w = writes_.at(s);
    const bool oldest = widx_.is_group_head(s);
    bool eligible = draining || idle_path;
    if (!eligible && bg_path && !write_conflicts_with_reads(w.addr) &&
        now >= sag_last_read_[sag_group(w.addr)] + cfg_.bg_write_guard) {
      eligible = true;
    }
    BlockCause cause = BlockCause::kQueuePolicy;
    if (eligible) {
      const BankT& bank = bank_of(w.addr);
      if (bank.row_open(w.addr)) {
        cause = bank.column_block_cause(w.addr, OpType::kWrite, now);
        if (cause == BlockCause::kNone) {
          cause = bus_.available(now + timing_.tCWD)
                      ? BlockCause::kQueuePolicy
                      : BlockCause::kBusConflict;
        }
      } else if (oldest) {
        cause = bank.activate_block_cause(w.addr, nvm::ActPurpose::kWrite, now);
        if (cause == BlockCause::kNone) cause = BlockCause::kQueuePolicy;
      }
    }
    obs_->set_cause(w.id, cause, now);
  }
}

template <typename BankT>
void ControllerT<BankT>::sample_obs(Cycle now, obs::ChannelSample& s) const {
  s.read_q += ridx_.size();
  s.write_q += writes_.size();
  s.inflight += inflight_reads_.size();
  const std::uint64_t nbanks = banks_.size();
  s.banks += nbanks;
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    s.max_bank_q = std::max(s.max_bank_q, ridx_.bank_count(b));
  }
  for (const auto& bank : banks_) {
    s.open_acts += bank->active_sags(now);
    s.busy_tiles += bank->active_cds(now);
  }
  // A CD serves one (SAG, CD) tile group at a time, so the number of tile
  // groups usable concurrently — the utilization denominator — is the CD
  // count, not SAGs x CDs.
  s.tile_groups += nbanks * geo_.num_cds;
}

template <typename BankT>
std::vector<mem::MemRequest> ControllerT<BankT>::take_completed() {
  std::vector<mem::MemRequest> out;
  out.swap(completed_);
  return out;
}

template <typename BankT>
void ControllerT<BankT>::drain_completed(std::vector<mem::MemRequest>& out) {
  out.insert(out.end(), completed_.begin(), completed_.end());
  completed_.clear();
}

template <typename BankT>
bool ControllerT<BankT>::idle() const {
  return ridx_.empty() && writes_.empty() && inflight_reads_.empty() &&
         completed_.empty();
}

// ---------------------------------------------------------------------------
// next_event. The contract (see DESIGN.md §6): the returned cycle must never
// overshoot the first cycle > now at which tick() would change any state or
// stat. It may undershoot (an early wake-up is a harmless no-op tick).
//
// The indexed implementation serves per-bank candidate minima from a cache
// (recomputed only for dirty banks) and applies the query-time globals —
// t0 clamp, bus readiness for flagged candidates, drain/idle/background
// gates — on top. That is exact because every global G combines as
// min_i max(c_i, G) == max(min_i c_i, G). FCFS read scans stop at the queue
// head, which does not decompose per bank, so FCFS uses the reference walk.
// ---------------------------------------------------------------------------

template <typename BankT>
void ControllerT<BankT>::refresh_global() const {
  // Only meaningful with every bank pure_timing: candidates computed at
  // t=0 stay valid at any later query (the clamp identity), so dirty banks
  // can be refreshed mid-tick, right after an issue, and the fold below
  // bounds every selector until the next mark_bank_dirty.
  if (!all_pure_ || global_valid_) return;
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    if (bank_dirty_[b]) {
      recompute_bank_cand(b, 0);
      bank_dirty_[b] = 0;
    }
  }
  BankCand g;
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    const BankCand& c = bank_cand_[b];
    g.read_col_plain = std::min(g.read_col_plain, c.read_col_plain);
    g.read_col_flagged = std::min(g.read_col_flagged, c.read_col_flagged);
    g.read_act = std::min(g.read_act, c.read_act);
    g.write_plain = std::min(g.write_plain, c.write_plain);
    g.write_flagged = std::min(g.write_flagged, c.write_flagged);
    g.write_bg_plain = std::min(g.write_bg_plain, c.write_bg_plain);
    g.write_bg_flagged = std::min(g.write_bg_flagged, c.write_bg_flagged);
  }
  global_cand_ = g;
  global_valid_ = true;
}

template <typename BankT>
void ControllerT<BankT>::recompute_bank_cand(std::uint64_t b, Cycle tq) const {
  BankCand c;
  const BankT& bank = *typed_[b];
  const bool aug = cfg_.policy == SchedulerPolicy::kFrfcfsAugmented;

  for (const std::uint32_t g : ridx_.active_groups_of_bank(b)) {
    GroupReadCand gc;
    const std::int32_t head = ridx_.group_head(g);
    const std::uint64_t hsag = ridx_.sag(head);
    const std::uint64_t hrow = ridx_.row_of(head);
    if (!bank.segments_sensed_key(hsag, hrow, ridx_.cds(head))) {
      // The maintained (bank, row) CD mask replaces the per-head row-list
      // walk the demand aggregation used to do.
      const std::uint64_t extra_cds = aug ? ridx_.row_cds(b, hrow) : 0;
      gc.act = bank.earliest_activate_key(hsag, hrow, ridx_.cds(head),
                                          extra_cds, nvm::ActPurpose::kRead,
                                          tq);
      c.read_act = std::min(c.read_act, gc.act);
    }
    const std::uint64_t sag = g % geo_.num_sags;
    const std::uint64_t row = bank.open_row_of(sag);
    if (row != kInvalidAddr) {
      // Candidates are minima at tq, so no early-out — but the
      // member-independent base still hoists out of the walk.
      [[maybe_unused]] Cycle col_base = 0;
      if constexpr (detail::kDecomposedColumnProbe<BankT>) {
        col_base = bank.column_base_key(sag, OpType::kRead, tq);
      }
      for (std::int32_t s = ridx_.row_head(b, row); s >= 0;
           s = ridx_.row_next(s)) {
        ridx_.prefetch(ridx_.row_next(s));
        if (!bank.segments_sensed_key(sag, row, ridx_.cds(s))) continue;
        Cycle e;
        if constexpr (detail::kDecomposedColumnProbe<BankT>) {
          e = bank.column_fold_key(ridx_.cds(s), OpType::kRead, col_base);
        } else {
          e = bank.earliest_column_key(sag, ridx_.cds(s), OpType::kRead, tq);
        }
        Cycle& tgt = ridx_.flagged(s) ? gc.col_flagged : gc.col_plain;
        tgt = std::min(tgt, e);
      }
      c.read_col_plain = std::min(c.read_col_plain, gc.col_plain);
      c.read_col_flagged = std::min(c.read_col_flagged, gc.col_flagged);
    }
    group_rcand_[g] = gc;
  }

  for (const std::uint32_t g : widx_.active_groups_of_bank(b)) {
    GroupWriteCand gc;
    const std::int32_t head = widx_.group_head(g);
    // The background SAG-conflict half of write_conflicts_with_reads is
    // uniform across the group (shared group-id space with ridx_); only
    // the CD-overlap half is per-write.
    const bool bg_group = aug && ridx_.group_count(g) == 0;
    const Cycle guard = sag_last_read_[g] + cfg_.bg_write_guard;
    // row_open(a) is open_row_of(a.sag) == a.row for every bank kind —
    // one probe covers the whole group.
    const std::uint64_t sag = g % geo_.num_sags;
    const std::uint64_t row = bank.open_row_of(sag);
    if (widx_.row_of(head) != row) {
      const Cycle e = bank.earliest_activate_key(
          sag, widx_.row_of(head), 0, 0, nvm::ActPurpose::kWrite, tq);
      // ACT candidates never fold in the bus, so they live in the plain min.
      gc.plain = e;
      if (bg_group && !ridx_.cd_overlap_mask(b, widx_.cds(head))) {
        gc.bg_plain = std::max(e, guard);
      }
    }
    if (row != kInvalidAddr) {
      [[maybe_unused]] Cycle col_base = 0;
      if constexpr (detail::kDecomposedColumnProbe<BankT>) {
        col_base = bank.column_base_key(sag, OpType::kWrite, tq);
      }
      for (std::int32_t s = widx_.row_head(b, row); s >= 0;
           s = widx_.row_next(s)) {
        widx_.prefetch(widx_.row_next(s));
        const bool flg = widx_.flagged(s);
        Cycle e;
        if constexpr (detail::kDecomposedColumnProbe<BankT>) {
          e = bank.column_fold_key(widx_.cds(s), OpType::kWrite, col_base);
        } else {
          e = bank.earliest_column_key(sag, widx_.cds(s), OpType::kWrite, tq);
        }
        (flg ? gc.flagged : gc.plain) =
            std::min(flg ? gc.flagged : gc.plain, e);
        if (bg_group && !ridx_.cd_overlap_mask(b, widx_.cds(s))) {
          Cycle& tgt = flg ? gc.bg_flagged : gc.bg_plain;
          tgt = std::min(tgt, std::max(e, guard));
        }
      }
    }
    c.write_plain = std::min(c.write_plain, gc.plain);
    c.write_flagged = std::min(c.write_flagged, gc.flagged);
    c.write_bg_plain = std::min(c.write_bg_plain, gc.bg_plain);
    c.write_bg_flagged = std::min(c.write_bg_flagged, gc.bg_flagged);
    group_wcand_[g] = gc;
  }

  bank_cand_[b] = c;
}

template <typename BankT>
Cycle ControllerT<BankT>::next_event_indexed(Cycle now) const {
  const Cycle t0 = now + 1;
  // A pending drain-latch flip is applied by the next tick's update_drain;
  // the flip itself is the event (see WriteQueue::drain_update_pending).
  if (writes_.drain_update_pending()) return t0;
  Cycle next = kNeverCycle;
  const auto consider = [&](Cycle cand) {
    next = std::min(next, std::max(cand, t0));
  };

  for (const InFlight& fl : inflight_reads_) {
    consider(fl.done);
    if (next == t0) return t0;  // no earlier actionable cycle exists
  }

  // Refreshes every pure-timing bank (and the global fold the selectors
  // gate on); the loop below then only touches banks with time-driven
  // state (DRAM refresh), which are recomputed at the querying cycle —
  // always, so stale dirty bits never matter for them either way.
  refresh_global();
  const std::uint64_t nbanks = banks_.size();
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    if (bank_dirty_[b] || !bank_pure_[b]) {
      recompute_bank_cand(b, bank_pure_[b] ? 0 : t0);
      bank_dirty_[b] = 0;
    }
  }

  // The first time a bank-ready read meets a busy bus, tick() sets its
  // sticky bus_blocked flag — a state change, so the candidate of an
  // unflagged read must NOT fold in bus availability (the wake at
  // bank-ready is where the flag gets set). Once flagged, nothing changes
  // until a lane frees up, so the candidate is the conjunction of bank and
  // bus readiness.
  const Cycle bus_read_ready =
      bus_.earliest_start(t0 + timing_.tCAS) - timing_.tCAS;
  for (std::uint64_t b = 0; b < nbanks; ++b) {
    const BankCand& c = bank_cand_[b];
    consider(c.read_col_plain);
    consider(std::max(c.read_col_flagged, bus_read_ready));
    consider(c.read_act);
    if (next == t0) return t0;
  }

  if (!writes_.empty()) {
    const bool draining = writes_.draining();
    const bool idle_path =
        !draining && ridx_.empty() && inflight_reads_.empty();
    // Low-occupancy idle drains additionally wait for the read stream to
    // have been quiet for drain_idle_timeout.
    Cycle idle_gate = 0;
    if (idle_path && writes_.size() < cfg_.wq_low) {
      idle_gate = last_read_activity_ + cfg_.drain_idle_timeout;
    }
    const bool bg_path = !draining &&
                         cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
                         writes_.size() >= cfg_.bg_write_min;
    // Backgrounded writes stall at the in-flight cap until a program pulse
    // finishes; expired entries are erased lazily by tick() and count as
    // free slots already.
    Cycle bg_gate = 0;
    if (bg_path) {
      std::uint64_t live = 0;
      Cycle earliest_done = kNeverCycle;
      for (Cycle d : write_done_times_) {
        if (d > now) {
          ++live;
          earliest_done = std::min(earliest_done, d);
        }
      }
      if (live >= cfg_.bg_write_inflight_max) bg_gate = earliest_done;
    }
    const Cycle bus_write_ready =
        bus_.earliest_start(t0 + timing_.tCWD) - timing_.tCWD;
    for (std::uint64_t b = 0; b < nbanks; ++b) {
      const BankCand& c = bank_cand_[b];
      if (draining || idle_path) {
        consider(std::max(c.write_plain, idle_gate));
        consider(std::max({c.write_flagged, bus_write_ready, idle_gate}));
      }
      if (bg_path) {
        consider(std::max(c.write_bg_plain, bg_gate));
        consider(std::max({c.write_bg_flagged, bus_write_ready, bg_gate}));
      }
      if (next == t0) return t0;
    }
  }
  return next;
}

template <typename BankT>
Cycle ControllerT<BankT>::next_event_reference(Cycle now) const {
  // The pre-index scan, preserved verbatim over the global FIFO lists.
  // Every clause mirrors one enabling condition of tick()/try_issue(); a
  // condition that can only flip through an enqueue or through another
  // event (e.g. a read leaving the queue clears a write conflict) needs no
  // clause of its own, because the driver re-evaluates after every enqueue
  // and every wake. The one exception is the write-queue drain latch: its
  // hysteresis makes the flip cycle itself scheduling-relevant state, so a
  // pending flip forces a wake at t0 (matching next_event_indexed).
  Cycle next = kNeverCycle;
  const Cycle t0 = now + 1;
  if (writes_.drain_update_pending()) return t0;
  const auto consider = [&](Cycle c) {
    next = std::min(next, std::max(c, t0));
  };

  for (const InFlight& fl : inflight_reads_) {
    consider(fl.done);
    if (next == t0) return t0;  // no earlier actionable cycle exists
  }

  // Queued reads, column path (same sticky bus_blocked rule as above).
  const Cycle bus_read_ready =
      bus_.earliest_start(t0 + timing_.tCAS) - timing_.tCAS;
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    const mem::MemRequest& r = rpool_[static_cast<std::size_t>(s)].req;
    const BankT& bank = bank_of(r.addr);
    if (bank.segments_sensed(r.addr)) {
      Cycle c = bank.earliest_column(r.addr, OpType::kRead, t0);
      if (r.bus_blocked) c = std::max(c, bus_read_ready);
      consider(c);
      if (next == t0) return t0;
    }
    if (cfg_.policy == SchedulerPolicy::kFcfs) break;  // head-of-queue only
  }

  // Queued reads, activate path: same oldest-per-(bank,SAG) walk and
  // demand-aggregation as the read-activate selection.
  for (std::int32_t s = ridx_.queue_head(); s >= 0; s = ridx_.queue_next(s)) {
    if (!ridx_.is_group_head(s)) continue;
    const mem::DecodedAddr& a = rpool_[static_cast<std::size_t>(s)].req.addr;
    const BankT& bank = bank_of(a);
    if (bank.segments_sensed(a)) continue;
    std::uint64_t extra_cds = 0;
    if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented) {
      for (std::int32_t o = ridx_.queue_head(); o >= 0;
           o = ridx_.queue_next(o)) {
        const mem::DecodedAddr& oa =
            rpool_[static_cast<std::size_t>(o)].req.addr;
        if (oa.same_row(a)) {
          for (std::uint64_t i = 0; i < oa.cd_count; ++i) {
            extra_cds |= 1ULL << (oa.cd + i);
          }
        }
      }
    }
    consider(bank.earliest_activate(a, nvm::ActPurpose::kRead, t0, extra_cds));
    if (next == t0) return t0;
    if (cfg_.policy == SchedulerPolicy::kFcfs) break;  // blocks the queue
  }

  if (!writes_.empty()) {
    const bool draining = writes_.draining();
    const bool idle_path =
        !draining && ridx_.empty() && inflight_reads_.empty();
    Cycle idle_gate = 0;
    if (idle_path && writes_.size() < cfg_.wq_low) {
      idle_gate = last_read_activity_ + cfg_.drain_idle_timeout;
    }
    const bool bg_path = !draining &&
                         cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
                         writes_.size() >= cfg_.bg_write_min;
    Cycle bg_gate = 0;
    if (bg_path) {
      std::uint64_t live = 0;
      Cycle earliest_done = kNeverCycle;
      for (Cycle d : write_done_times_) {
        if (d > now) {
          ++live;
          earliest_done = std::min(earliest_done, d);
        }
      }
      if (live >= cfg_.bg_write_inflight_max) bg_gate = earliest_done;
    }
    if (draining || idle_path || bg_path) {
      const Cycle bus_write_ready =
          bus_.earliest_start(t0 + timing_.tCWD) - timing_.tCWD;
      for (std::int32_t s = writes_.first(); s >= 0; s = writes_.next(s)) {
        const mem::MemRequest& w = writes_.at(s);
        const bool oldest_in_group = widx_.is_group_head(s);
        const BankT& bank = bank_of(w.addr);
        Cycle c;
        if (bank.row_open(w.addr)) {
          c = bank.earliest_column(w.addr, OpType::kWrite, t0);
          // Same sticky-flag rule as the read column path.
          if (w.bus_blocked) c = std::max(c, bus_write_ready);
        } else if (oldest_in_group) {
          c = bank.earliest_activate(w.addr, nvm::ActPurpose::kWrite, t0);
        } else {
          continue;  // only the oldest write per SAG may re-activate
        }
        if (draining || idle_path) consider(std::max(c, idle_gate));
        if (bg_path && !write_conflicts_with_reads_reference(w.addr)) {
          const Cycle guard =
              sag_last_read_[sag_group(w.addr)] + cfg_.bg_write_guard;
          consider(std::max({c, bg_gate, guard}));
        }
        if (next == t0) return t0;
      }
    }
  }
  return next;
}

template <typename BankT>
Cycle ControllerT<BankT>::next_event_internal(Cycle now) const {
  if (cfg_.policy == SchedulerPolicy::kFcfs) {
    // FCFS read scans break at the queue head — not decomposable into
    // per-bank minima; the reference walk is already O(small) there.
    return next_event_reference(now);
  }
  const Cycle next = next_event_indexed(now);
  if (cross_check_ && next != next_event_reference(now)) {
    detail::throw_divergence("next_event");
  }
  return next;
}

template <typename BankT>
Cycle ControllerT<BankT>::next_event(Cycle now) const {
  if (!completed_.empty()) return now + 1;
  return next_event_internal(now);
}

}  // namespace fgnvm::sched
