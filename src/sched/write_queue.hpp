// Controller write queue with high/low watermark draining.
//
// Writes are posted: the CPU considers them complete on acceptance. The
// controller buffers them here and either drains in bursts (watermark
// policy, as in conventional controllers) or issues them opportunistically
// as Backgrounded Writes (augmented FRFCFS, Section 4). Reads that hit a
// queued write are forwarded; duplicate writes to the same line coalesce.
//
// Storage is a stable slot pool (indices never move, so the controller's
// RequestIndex can key its per-group/per-row lists by slot), an intrusive
// FIFO list preserving arrival order, and a line-address hash map making
// covers()/coalescing O(1) — the line map is exact because coalescing keeps
// at most one entry per line.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/request.hpp"

namespace fgnvm::sched {

class WriteQueue {
 public:
  /// `high` >= `low`; draining starts when size() >= high and stops when
  /// size() <= low. capacity >= high. `line_bytes` sets the coalescing /
  /// forwarding granularity.
  WriteQueue(std::uint64_t capacity, std::uint64_t high, std::uint64_t low,
             std::uint64_t line_bytes = 64);

  bool full() const { return size_ >= capacity_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t size() const { return size_; }
  std::uint64_t capacity() const { return capacity_; }

  /// Adds a write, coalescing with an existing entry for the same line.
  /// Returns true if coalesced. Precondition: !full() unless it coalesces.
  bool add(const mem::MemRequest& req) { return add_slot(req) < 0; }

  /// Slot-returning variant: the new entry's stable slot index, or -1 when
  /// the write coalesced into an existing entry.
  std::int32_t add_slot(const mem::MemRequest& req);

  /// True if a queued write covers this line address (read forwarding).
  bool covers(Addr line_addr) const {
    return by_line_.find(line_of(line_addr)) != by_line_.end();
  }

  /// Updates drain state for the current occupancy; returns whether the
  /// controller should prioritize writes this cycle.
  bool update_drain();
  bool draining() const { return draining_; }

  /// True when the next update_drain() call will flip the drain latch.
  /// The latch is hysteretic (between wq_low and wq_high both states are
  /// stable), so the flip is a genuine scheduling event: next_event must
  /// schedule a tick for the cycle after the occupancy crossing, or a
  /// lazily-ticked channel samples the latch at a later cycle — by which
  /// time new arrivals may have pushed occupancy back into the bistable
  /// band and the latch settles differently than under per-cycle ticking.
  bool drain_update_pending() const {
    return draining_ ? size_ <= low_ : size_ >= high_;
  }

  /// FIFO iteration over stable slot indices: for (s = first(); s >= 0;
  /// s = next(s)). Arrival order, unaffected by removals elsewhere.
  std::int32_t first() const { return head_; }
  std::int32_t next(std::int32_t slot) const {
    return slots_[static_cast<std::size_t>(slot)].next;
  }

  const mem::MemRequest& at(std::int32_t slot) const {
    return slots_[static_cast<std::size_t>(slot)].req;
  }

  /// Mutable access for the controller's per-request scheduling bookkeeping
  /// (e.g. the bus_blocked flag); queue membership must not be changed
  /// through this reference — use add()/remove_slot().
  mem::MemRequest& at_mut(std::int32_t slot) {
    return slots_[static_cast<std::size_t>(slot)].req;
  }

  /// Removes the entry in `slot` (after issue).
  void remove_slot(std::int32_t slot);

  /// Removes the entry with the given request id; throws if absent.
  void remove(RequestId id);

  std::uint64_t coalesced() const { return coalesced_; }
  std::uint64_t drains_started() const { return drains_started_; }

 private:
  struct Slot {
    mem::MemRequest req;
    std::int32_t prev = -1;
    std::int32_t next = -1;
    bool live = false;
  };

  Addr line_of(Addr addr) const { return addr & ~(line_bytes_ - 1); }

  std::uint64_t capacity_;
  std::uint64_t high_;
  std::uint64_t low_;
  std::uint64_t line_bytes_;
  bool draining_ = false;
  std::vector<Slot> slots_;               // stable pool, sized to capacity
  std::vector<std::int32_t> free_;        // free slot indices
  std::unordered_map<Addr, std::int32_t> by_line_;  // line -> slot
  std::int32_t head_ = -1, tail_ = -1;    // FIFO list
  std::uint64_t size_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t drains_started_ = 0;
};

}  // namespace fgnvm::sched
