// Controller write queue with high/low watermark draining.
//
// Writes are posted: the CPU considers them complete on acceptance. The
// controller buffers them here and either drains in bursts (watermark
// policy, as in conventional controllers) or issues them opportunistically
// as Backgrounded Writes (augmented FRFCFS, Section 4). Reads that hit a
// queued write are forwarded; duplicate writes to the same line coalesce.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/types.hpp"
#include "mem/request.hpp"

namespace fgnvm::sched {

class WriteQueue {
 public:
  /// `high` >= `low`; draining starts when size() >= high and stops when
  /// size() <= low. capacity >= high. `line_bytes` sets the coalescing /
  /// forwarding granularity.
  WriteQueue(std::uint64_t capacity, std::uint64_t high, std::uint64_t low,
             std::uint64_t line_bytes = 64);

  bool full() const { return entries_.size() >= capacity_; }
  bool empty() const { return entries_.empty(); }
  std::uint64_t size() const { return entries_.size(); }
  std::uint64_t capacity() const { return capacity_; }

  /// Adds a write, coalescing with an existing entry for the same line.
  /// Returns true if coalesced. Precondition: !full() unless it coalesces.
  bool add(const mem::MemRequest& req);

  /// True if a queued write covers this line address (read forwarding).
  bool covers(Addr line_addr) const;

  /// Updates drain state for the current occupancy; returns whether the
  /// controller should prioritize writes this cycle.
  bool update_drain();
  bool draining() const { return draining_; }

  /// Access to pending writes in FIFO order.
  const std::deque<mem::MemRequest>& entries() const { return entries_; }

  /// Mutable access for the controller's per-request scheduling bookkeeping
  /// (e.g. the bus_blocked flag); queue membership must not be changed
  /// through this reference — use add()/remove().
  std::deque<mem::MemRequest>& entries_mut() { return entries_; }

  /// Removes the entry with the given request id (after issue).
  void remove(RequestId id);

  std::uint64_t coalesced() const { return coalesced_; }
  std::uint64_t drains_started() const { return drains_started_; }

 private:
  Addr line_of(Addr addr) const { return addr & ~(line_bytes_ - 1); }

  std::uint64_t capacity_;
  std::uint64_t high_;
  std::uint64_t low_;
  std::uint64_t line_bytes_;
  bool draining_ = false;
  std::deque<mem::MemRequest> entries_;
  std::uint64_t coalesced_ = 0;
  std::uint64_t drains_started_ = 0;
};

}  // namespace fgnvm::sched
