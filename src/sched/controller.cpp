#include "sched/controller.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fgnvm::sched {

SchedulerPolicy scheduler_policy_from_string(const std::string& name) {
  if (name == "fcfs") return SchedulerPolicy::kFcfs;
  if (name == "frfcfs") return SchedulerPolicy::kFrfcfs;
  if (name == "frfcfs_aug" || name == "augmented")
    return SchedulerPolicy::kFrfcfsAugmented;
  throw std::runtime_error("unknown scheduler policy: " + name);
}

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFcfs: return "fcfs";
    case SchedulerPolicy::kFrfcfs: return "frfcfs";
    case SchedulerPolicy::kFrfcfsAugmented: return "frfcfs_aug";
  }
  return "?";
}

PagePolicy page_policy_from_string(const std::string& name) {
  if (name == "open") return PagePolicy::kOpen;
  if (name == "closed") return PagePolicy::kClosed;
  throw std::runtime_error("unknown page policy: " + name);
}

const char* to_string(PagePolicy policy) {
  return policy == PagePolicy::kOpen ? "open" : "closed";
}

ControllerConfig ControllerConfig::from_config(const Config& cfg) {
  ControllerConfig c;
  c.policy = scheduler_policy_from_string(
      cfg.get_string("scheduler", to_string(c.policy)));
  c.page_policy = page_policy_from_string(
      cfg.get_string("page_policy", to_string(c.page_policy)));
  c.read_queue_cap = cfg.get_u64("read_queue", c.read_queue_cap);
  c.write_queue_cap = cfg.get_u64("write_queue", c.write_queue_cap);
  c.wq_high = cfg.get_u64("wq_high", c.wq_high);
  c.wq_low = cfg.get_u64("wq_low", c.wq_low);
  c.issue_width = cfg.get_u64("issue_width", c.issue_width);
  c.bus_lanes = cfg.get_u64("bus_lanes", c.bus_lanes);
  c.drain_idle_timeout = cfg.get_u64("drain_idle_timeout", c.drain_idle_timeout);
  c.bg_write_guard = cfg.get_u64("bg_write_guard", c.bg_write_guard);
  c.bg_write_min = cfg.get_u64("bg_write_min", c.bg_write_min);
  c.bg_write_inflight_max =
      cfg.get_u64("bg_write_inflight_max", c.bg_write_inflight_max);
  if (c.issue_width == 0 || c.bus_lanes == 0) {
    throw std::runtime_error("ControllerConfig: zero issue_width/bus_lanes");
  }
  return c;
}

Controller::Controller(const mem::MemGeometry& geometry,
                       const mem::TimingParams& timing,
                       const ControllerConfig& cfg,
                       const BankFactory& make_bank)
    : geo_(geometry),
      timing_(timing),
      cfg_(cfg),
      bus_(cfg.bus_lanes),
      writes_(cfg.write_queue_cap, cfg.wq_high, cfg.wq_low,
              geometry.line_bytes) {
  const std::uint64_t n = geo_.ranks_per_channel * geo_.banks_per_rank;
  banks_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) banks_.push_back(make_bank());
  sag_last_read_.assign(n * geo_.num_sags, 0);
  group_stamp_.assign(n * geo_.num_sags, 0);
  reads_.reserve(cfg_.read_queue_cap);
  inflight_reads_.reserve(cfg_.read_queue_cap);
  completed_.reserve(cfg_.read_queue_cap);
  write_done_times_.reserve(cfg_.bg_write_inflight_max + 1);
}

std::uint64_t Controller::sag_group(const mem::DecodedAddr& a) const {
  return (a.rank * geo_.banks_per_rank + a.bank) * geo_.num_sags + a.sag;
}

nvm::Bank& Controller::bank_of(const mem::DecodedAddr& a) {
  return *banks_[a.rank * geo_.banks_per_rank + a.bank];
}

const nvm::Bank& Controller::bank_of(const mem::DecodedAddr& a) const {
  return *banks_[a.rank * geo_.banks_per_rank + a.bank];
}

bool Controller::can_accept(OpType op) const {
  if (op == OpType::kRead) return reads_.size() < cfg_.read_queue_cap;
  return !writes_.full();
}

void Controller::enqueue(mem::MemRequest req, Cycle now) {
  req.arrival = now;
  if (req.is_read()) {
    if (writes_.covers(req.addr.addr)) {
      // Store-to-load forwarding from the write queue: served next cycle.
      req.completion = now + 1;
      completed_.push_back(req);
      stats_.inc("reads.forwarded");
      stats_.sample("read_latency", 1.0);
      if (obs_) obs_->on_forwarded();
      return;
    }
    if (reads_.size() >= cfg_.read_queue_cap) {
      throw std::runtime_error("Controller: read queue overflow");
    }
    if (bank_of(req.addr).segments_sensed(req.addr)) {
      stats_.inc("reads.row_hit_arrival");
    }
    reads_.push_back(PendingRead{req});
    last_read_activity_ = now;
    sag_last_read_[sag_group(req.addr)] = now;
    stats_.inc("reads.accepted");
    if (obs_) obs_->on_enqueue(req, now);
  } else {
    const bool coalesced = writes_.add(req);
    stats_.inc(coalesced ? "writes.coalesced" : "writes.accepted");
    if (obs_) {
      if (coalesced) {
        obs_->on_coalesced();
      } else {
        obs_->on_enqueue(req, now);
      }
    }
  }
}

void Controller::maybe_close_row(const mem::DecodedAddr& a, Cycle now) {
  if (cfg_.page_policy != PagePolicy::kClosed) return;
  for (const PendingRead& r : reads_) {
    if (r.req.addr.same_row(a)) return;  // still wanted
  }
  for (const mem::MemRequest& w : writes_.entries()) {
    if (w.addr.same_row(a)) return;
  }
  bank_of(a).close_row(a, now);
  stats_.inc("cmd.close_row");
}

bool Controller::write_conflicts_with_reads(const mem::DecodedAddr& w) const {
  for (const PendingRead& r : reads_) {
    const mem::DecodedAddr& a = r.req.addr;
    if (!a.same_bank(w)) continue;
    if (a.sag == w.sag) return true;
    // CD range overlap check.
    const std::uint64_t a_lo = a.cd, a_hi = a.cd + a.cd_count;
    const std::uint64_t w_lo = w.cd, w_hi = w.cd + w.cd_count;
    if (a_lo < w_hi && w_lo < a_hi) return true;
  }
  return false;
}

bool Controller::try_issue_read_column(Cycle now) {
  for (auto it = reads_.begin(); it != reads_.end(); ++it) {
    nvm::Bank& bank = bank_of(it->req.addr);
    if (!bank.segments_sensed(it->req.addr)) {
      if (cfg_.policy == SchedulerPolicy::kFcfs) return false;
      continue;
    }
    if (bank.earliest_column(it->req.addr, OpType::kRead, now) > now) {
      if (cfg_.policy == SchedulerPolicy::kFcfs) return false;
      continue;
    }
    const Cycle data_start = now + timing_.tCAS;
    if (!bus_.available(data_start)) {
      // Sticky flag, counted once at issue: "bursts delayed by bus
      // contention". next_event folds bus availability into the candidate of
      // a flagged read, so the event loop need not revisit busy cycles.
      it->req.bus_blocked = true;
      if (cfg_.policy == SchedulerPolicy::kFcfs) return false;
      continue;
    }
    if (it->req.bus_blocked) stats_.inc("bus.column_conflicts");
    const Cycle burst_start =
        bank.issue_column(it->req.addr, OpType::kRead, now);
    assert(burst_start == data_start);
    (void)burst_start;
    bus_.reserve(data_start, timing_.tBURST);
    if (obs_) obs_->on_read_burst(it->req.id, now, data_start);
    InFlight fl{it->req, data_start + timing_.tBURST};
    inflight_reads_.push_back(fl);
    sag_last_read_[sag_group(it->req.addr)] = now;
    const mem::DecodedAddr done_addr = it->req.addr;
    reads_.erase(it);
    stats_.inc("cmd.read");
    maybe_close_row(done_addr, now);
    return true;
  }
  return false;
}

bool Controller::try_issue_read_activate(Cycle now) {
  // Per (bank, sag), only the *oldest* queued read may trigger an ACT; this
  // both mirrors the per-SAG row-latch (one pending row per SAG) and
  // guarantees the oldest request in a SAG always makes progress (no
  // livelock from row-buffer thrashing).
  begin_group_scan();
  for (const PendingRead& r : reads_) {
    const mem::DecodedAddr& a = r.req.addr;
    if (!first_in_group(sag_group(a))) continue;  // not oldest
    nvm::Bank& bank = bank_of(a);
    if (bank.segments_sensed(a)) continue;  // waiting on column, not ACT
    std::uint64_t extra_cds = 0;
    if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented) {
      // Demand-aggregated partial activation: one ACT senses every CD that
      // queued reads to this same row already want (the per-CD CSLs are
      // one-hot, so several can be enabled in a single activation).
      for (const PendingRead& other : reads_) {
        const mem::DecodedAddr& o = other.req.addr;
        if (o.same_row(a)) {
          for (std::uint64_t i = 0; i < o.cd_count; ++i) {
            extra_cds |= 1ULL << (o.cd + i);
          }
        }
      }
    }
    if (bank.earliest_activate(a, nvm::ActPurpose::kRead, now, extra_cds) <=
        now) {
      // An underfetch re-sense is an ACT on the already-open row (some CDs
      // the queue wants were not sensed by the earlier activation).
      const bool underfetch = bank.row_open(a);
      bank.issue_activate(a, nvm::ActPurpose::kRead, now, extra_cds);
      stats_.inc("cmd.act_read");
      if (obs_) {
        // Stamp the ACT on every queued read this activation now covers.
        for (const PendingRead& other : reads_) {
          const mem::DecodedAddr& o = other.req.addr;
          if (o.same_row(a) && bank.segments_sensed(o)) {
            obs_->on_activate(other.req.id, now, underfetch);
          }
        }
      }
      return true;
    }
    if (cfg_.policy == SchedulerPolicy::kFcfs) return false;
  }
  return false;
}

bool Controller::try_issue_write(Cycle now, bool background_only) {
  // As with reads, only the oldest write per (bank, SAG) may change that
  // SAG's open row — otherwise queued writes to different rows of one SAG
  // thrash the row latch and re-activate forever.
  begin_group_scan();
  for (mem::MemRequest& w : writes_.entries_mut()) {
    const bool oldest_in_group = first_in_group(sag_group(w.addr));
    if (background_only) {
      // A backgrounded write must not collide with queued reads (Section-4
      // SAG/CD constraint) nor park itself in a SAG the read stream is
      // actively using — a 150 ns program pulse there stalls the next burst.
      if (write_conflicts_with_reads(w.addr)) continue;
      if (now < sag_last_read_[sag_group(w.addr)] + cfg_.bg_write_guard)
        continue;
    }
    nvm::Bank& bank = bank_of(w.addr);
    if (!bank.row_open(w.addr)) {
      if (oldest_in_group &&
          bank.earliest_activate(w.addr, nvm::ActPurpose::kWrite, now) <= now) {
        bank.issue_activate(w.addr, nvm::ActPurpose::kWrite, now);
        stats_.inc("cmd.act_write");
        if (obs_) obs_->on_activate(w.id, now, /*underfetch=*/false);
        return true;
      }
      continue;
    }
    if (bank.earliest_column(w.addr, OpType::kWrite, now) > now) continue;
    const Cycle data_start = now + timing_.tCWD;
    if (!bus_.available(data_start)) {
      w.bus_blocked = true;  // counted once at issue; see read column path
      continue;
    }
    if (w.bus_blocked) stats_.inc("bus.column_conflicts");
    const Cycle done = bank.issue_column(w.addr, OpType::kWrite, now);
    write_done_times_.push_back(done);
    bus_.reserve(data_start, timing_.tBURST);
    if (obs_) obs_->on_write_issue(w.id, now, done);
    const mem::DecodedAddr done_addr = w.addr;
    writes_.remove(w.id);
    stats_.inc(background_only ? "cmd.write_background" : "cmd.write_drain");
    stats_.inc("cmd.write");
    // Closed-page: the write's row closes once the program completes.
    if (cfg_.page_policy == PagePolicy::kClosed) maybe_close_row(done_addr, done);
    return true;
  }
  return false;
}

bool Controller::try_issue(Cycle now, bool& write_done) {
  const bool draining = writes_.draining();
  const bool idle_reads = reads_.empty();

  const auto issue_write = [&](bool background_only) {
    if (write_done) return false;
    if (try_issue_write(now, background_only)) {
      write_done = true;
      return true;
    }
    return false;
  };

  if (draining) {
    if (issue_write(/*background_only=*/false)) return true;
    if (try_issue_read_column(now)) return true;
    return try_issue_read_activate(now);
  }
  if (try_issue_read_column(now)) return true;
  if (try_issue_read_activate(now)) return true;
  // Count writes still programming (for the background in-flight cap).
  std::erase_if(write_done_times_, [&](Cycle done) { return done <= now; });
  if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
      writes_.size() >= cfg_.bg_write_min &&
      write_done_times_.size() < cfg_.bg_write_inflight_max) {
    // Backgrounded Writes: slip writes under pending reads whenever the
    // target (bank, SAG, CD) is disjoint from every queued read. The
    // occupancy floor preserves the coalescing window — draining writes the
    // moment they arrive forfeits merges with imminent rewrites.
    if (issue_write(/*background_only=*/true)) return true;
  }
  if (idle_reads && inflight_reads_.empty() && !writes_.empty()) {
    // Conventional opportunistic drain while the read stream is idle — but
    // only once enough writes accumulated or the stream has been quiet for
    // a while; dribbling single writes out eagerly trashes open rows the
    // read stream is about to revisit.
    const bool quiet =
        now >= last_read_activity_ + cfg_.drain_idle_timeout;
    if (writes_.size() >= cfg_.wq_low || quiet) {
      return issue_write(/*background_only=*/false);
    }
  }
  return false;
}

void Controller::tick(Cycle now) {
  // Charge the span since the previous tick to each traced request's pending
  // cause before any state changes this cycle.
  if (obs_) obs_->close_spans(now);

  // Retire finished read bursts.
  for (auto it = inflight_reads_.begin(); it != inflight_reads_.end();) {
    if (it->done <= now) {
      it->req.completion = it->done;
      const double latency = static_cast<double>(it->done - it->req.arrival);
      stats_.sample("read_latency", latency);
      stats_.hsample("read_latency_hist", latency);
      if (obs_) obs_->on_read_complete(it->req.id, it->done);
      completed_.push_back(it->req);
      it = inflight_reads_.erase(it);
    } else {
      ++it;
    }
  }

  writes_.update_drain();
  bool write_done = false;
  for (std::uint64_t slot = 0; slot < cfg_.issue_width; ++slot) {
    if (!try_issue(now, write_done)) break;
  }

  if (obs_) observe_blocking(now);
}

void Controller::observe_blocking(Cycle now) {
  using obs::BlockCause;
  // Post-issue classification: everything still queued here failed to issue
  // this tick; the bank state now reflects whatever did issue, so the cause
  // read off the bank is the one that will hold until the next event.
  begin_group_scan();
  bool head = true;
  for (const PendingRead& r : reads_) {
    const mem::DecodedAddr& a = r.req.addr;
    const bool oldest = first_in_group(sag_group(a));
    if (cfg_.policy == SchedulerPolicy::kFcfs && !head) {
      // FCFS serves strictly in order: everything behind the head waits on
      // the queue discipline, whatever the banks look like.
      obs_->set_cause(r.req.id, BlockCause::kQueuePolicy, now);
      continue;
    }
    head = false;
    const nvm::Bank& bank = bank_of(a);
    BlockCause cause;
    if (bank.segments_sensed(a)) {
      cause = bank.column_block_cause(a, OpType::kRead, now);
      if (cause == BlockCause::kNone) {
        cause = bus_.available(now + timing_.tCAS) ? BlockCause::kQueuePolicy
                                                   : BlockCause::kBusConflict;
      }
    } else if (!oldest) {
      cause = BlockCause::kQueuePolicy;  // an older read owns this SAG's ACT
    } else {
      cause = bank.activate_block_cause(a, nvm::ActPurpose::kRead, now);
      if (cause == BlockCause::kNone) cause = BlockCause::kQueuePolicy;
    }
    obs_->set_cause(r.req.id, cause, now);
  }

  if (writes_.empty()) return;
  const bool draining = writes_.draining();
  const bool idle_path = !draining && reads_.empty() &&
                         inflight_reads_.empty() &&
                         (writes_.size() >= cfg_.wq_low ||
                          now >= last_read_activity_ + cfg_.drain_idle_timeout);
  std::uint64_t live_writes = 0;
  for (const Cycle d : write_done_times_) live_writes += d > now ? 1 : 0;
  const bool bg_path = !draining &&
                       cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
                       writes_.size() >= cfg_.bg_write_min &&
                       live_writes < cfg_.bg_write_inflight_max;
  begin_group_scan();
  for (const mem::MemRequest& w : writes_.entries()) {
    const bool oldest = first_in_group(sag_group(w.addr));
    bool eligible = draining || idle_path;
    if (!eligible && bg_path && !write_conflicts_with_reads(w.addr) &&
        now >= sag_last_read_[sag_group(w.addr)] + cfg_.bg_write_guard) {
      eligible = true;
    }
    BlockCause cause = BlockCause::kQueuePolicy;
    if (eligible) {
      const nvm::Bank& bank = bank_of(w.addr);
      if (bank.row_open(w.addr)) {
        cause = bank.column_block_cause(w.addr, OpType::kWrite, now);
        if (cause == BlockCause::kNone) {
          cause = bus_.available(now + timing_.tCWD)
                      ? BlockCause::kQueuePolicy
                      : BlockCause::kBusConflict;
        }
      } else if (oldest) {
        cause = bank.activate_block_cause(w.addr, nvm::ActPurpose::kWrite, now);
        if (cause == BlockCause::kNone) cause = BlockCause::kQueuePolicy;
      }
    }
    obs_->set_cause(w.id, cause, now);
  }
}

void Controller::sample_obs(Cycle now, obs::ChannelSample& s) const {
  s.read_q += reads_.size();
  s.write_q += writes_.size();
  s.inflight += inflight_reads_.size();
  const std::uint64_t nbanks = banks_.size();
  s.banks += nbanks;
  // Scratch allocation is fine here: sampling only runs on the enabled path,
  // once per epoch.
  std::vector<std::uint64_t> depth(nbanks, 0);
  for (const PendingRead& r : reads_) {
    ++depth[r.req.addr.rank * geo_.banks_per_rank + r.req.addr.bank];
  }
  for (const std::uint64_t d : depth) s.max_bank_q = std::max(s.max_bank_q, d);
  for (const auto& bank : banks_) {
    s.open_acts += bank->active_sags(now);
    s.busy_tiles += bank->active_cds(now);
  }
  // A CD serves one (SAG, CD) tile group at a time, so the number of tile
  // groups usable concurrently — the utilization denominator — is the CD
  // count, not SAGs x CDs.
  s.tile_groups += nbanks * geo_.num_cds;
}

std::vector<mem::MemRequest> Controller::take_completed() {
  std::vector<mem::MemRequest> out;
  out.swap(completed_);
  return out;
}

void Controller::drain_completed(std::vector<mem::MemRequest>& out) {
  out.insert(out.end(), completed_.begin(), completed_.end());
  completed_.clear();
}

bool Controller::idle() const {
  return reads_.empty() && writes_.empty() && inflight_reads_.empty() &&
         completed_.empty();
}

Cycle Controller::next_event(Cycle now) const {
  // Contract (see DESIGN.md): the returned cycle must never overshoot the
  // first cycle > now at which tick() would change any state or stat. It may
  // undershoot (an early wake-up is a harmless no-op tick). Every clause
  // below mirrors one enabling condition of tick()/try_issue(); a condition
  // that can only flip through an enqueue or through another event (e.g. a
  // read leaving the queue clears a write conflict) needs no clause of its
  // own, because the driver re-evaluates after every enqueue and every wake.
  if (!completed_.empty()) return now + 1;

  Cycle next = kNeverCycle;
  const Cycle t0 = now + 1;
  const auto consider = [&](Cycle c) {
    next = std::min(next, std::max(c, t0));
  };

  for (const InFlight& fl : inflight_reads_) {
    consider(fl.done);
    if (next == t0) return t0;  // no earlier actionable cycle exists
  }

  // Queued reads, column path. The first time a bank-ready read meets a busy
  // bus, tick() sets its sticky bus_blocked flag — a state change, so the
  // candidate of an unflagged read must NOT fold in bus availability (the
  // wake at bank-ready is where the flag gets set). Once flagged, nothing
  // changes until a lane frees up, so the candidate is the conjunction of
  // bank and bus readiness.
  const Cycle bus_read_ready =
      bus_.earliest_start(t0 + timing_.tCAS) - timing_.tCAS;
  for (const PendingRead& r : reads_) {
    const nvm::Bank& bank = bank_of(r.req.addr);
    if (bank.segments_sensed(r.req.addr)) {
      Cycle c = bank.earliest_column(r.req.addr, OpType::kRead, t0);
      if (r.req.bus_blocked) c = std::max(c, bus_read_ready);
      consider(c);
      if (next == t0) return t0;
    }
    if (cfg_.policy == SchedulerPolicy::kFcfs) break;  // head-of-queue only
  }

  // Queued reads, activate path: same oldest-per-(bank,SAG) walk and
  // demand-aggregation as try_issue_read_activate.
  begin_group_scan();
  for (const PendingRead& r : reads_) {
    const mem::DecodedAddr& a = r.req.addr;
    if (!first_in_group(sag_group(a))) continue;
    const nvm::Bank& bank = bank_of(a);
    if (bank.segments_sensed(a)) continue;
    std::uint64_t extra_cds = 0;
    if (cfg_.policy == SchedulerPolicy::kFrfcfsAugmented) {
      for (const PendingRead& other : reads_) {
        const mem::DecodedAddr& o = other.req.addr;
        if (o.same_row(a)) {
          for (std::uint64_t i = 0; i < o.cd_count; ++i) {
            extra_cds |= 1ULL << (o.cd + i);
          }
        }
      }
    }
    consider(bank.earliest_activate(a, nvm::ActPurpose::kRead, t0, extra_cds));
    if (next == t0) return t0;
    if (cfg_.policy == SchedulerPolicy::kFcfs) break;  // blocks the queue
  }

  if (!writes_.empty()) {
    const bool draining = writes_.draining();
    const bool idle_path = !draining && reads_.empty() && inflight_reads_.empty();
    // Low-occupancy idle drains additionally wait for the read stream to
    // have been quiet for drain_idle_timeout.
    Cycle idle_gate = 0;
    if (idle_path && writes_.size() < cfg_.wq_low) {
      idle_gate = last_read_activity_ + cfg_.drain_idle_timeout;
    }
    const bool bg_path = !draining &&
                         cfg_.policy == SchedulerPolicy::kFrfcfsAugmented &&
                         writes_.size() >= cfg_.bg_write_min;
    // Backgrounded writes stall at the in-flight cap until a program pulse
    // finishes; expired entries are erased lazily by tick() and count as
    // free slots already.
    Cycle bg_gate = 0;
    if (bg_path) {
      std::uint64_t live = 0;
      Cycle earliest_done = kNeverCycle;
      for (Cycle d : write_done_times_) {
        if (d > now) {
          ++live;
          earliest_done = std::min(earliest_done, d);
        }
      }
      if (live >= cfg_.bg_write_inflight_max) bg_gate = earliest_done;
    }
    if (draining || idle_path || bg_path) {
      const Cycle bus_write_ready =
          bus_.earliest_start(t0 + timing_.tCWD) - timing_.tCWD;
      begin_group_scan();
      for (const mem::MemRequest& w : writes_.entries()) {
        const bool oldest_in_group = first_in_group(sag_group(w.addr));
        const nvm::Bank& bank = bank_of(w.addr);
        Cycle c;
        if (bank.row_open(w.addr)) {
          c = bank.earliest_column(w.addr, OpType::kWrite, t0);
          // Same sticky-flag rule as the read column path.
          if (w.bus_blocked) c = std::max(c, bus_write_ready);
        } else if (oldest_in_group) {
          c = bank.earliest_activate(w.addr, nvm::ActPurpose::kWrite, t0);
        } else {
          continue;  // only the oldest write per SAG may re-activate
        }
        if (draining || idle_path) consider(std::max(c, idle_gate));
        if (bg_path && !write_conflicts_with_reads(w.addr)) {
          const Cycle guard =
              sag_last_read_[sag_group(w.addr)] + cfg_.bg_write_guard;
          consider(std::max({c, bg_gate, guard}));
        }
        if (next == t0) return t0;
      }
    }
  }
  return next;
}

}  // namespace fgnvm::sched
