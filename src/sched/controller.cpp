#include "sched/controller.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "dram/dram_bank.hpp"
#include "nvm/fgnvm_bank.hpp"
#include "sched/controller_impl.hpp"

namespace fgnvm::sched {

namespace detail {

bool paranoid_env() {
  const char* env = std::getenv("FGNVM_PARANOID");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

[[noreturn]] void throw_divergence(const char* what) {
  throw std::runtime_error(
      std::string("Controller cross-check: indexed ") + what +
      " diverged from the reference full-queue scan");
}

}  // namespace detail

SchedulerPolicy scheduler_policy_from_string(const std::string& name) {
  if (name == "fcfs") return SchedulerPolicy::kFcfs;
  if (name == "frfcfs") return SchedulerPolicy::kFrfcfs;
  if (name == "frfcfs_aug" || name == "augmented")
    return SchedulerPolicy::kFrfcfsAugmented;
  throw std::runtime_error("unknown scheduler policy: " + name);
}

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFcfs: return "fcfs";
    case SchedulerPolicy::kFrfcfs: return "frfcfs";
    case SchedulerPolicy::kFrfcfsAugmented: return "frfcfs_aug";
  }
  return "?";
}

PagePolicy page_policy_from_string(const std::string& name) {
  if (name == "open") return PagePolicy::kOpen;
  if (name == "closed") return PagePolicy::kClosed;
  throw std::runtime_error("unknown page policy: " + name);
}

const char* to_string(PagePolicy policy) {
  return policy == PagePolicy::kOpen ? "open" : "closed";
}

ControllerConfig ControllerConfig::from_config(const Config& cfg) {
  ControllerConfig c;
  c.policy = scheduler_policy_from_string(
      cfg.get_string("scheduler", to_string(c.policy)));
  c.page_policy = page_policy_from_string(
      cfg.get_string("page_policy", to_string(c.page_policy)));
  c.read_queue_cap = cfg.get_u64("read_queue", c.read_queue_cap);
  c.write_queue_cap = cfg.get_u64("write_queue", c.write_queue_cap);
  c.wq_high = cfg.get_u64("wq_high", c.wq_high);
  c.wq_low = cfg.get_u64("wq_low", c.wq_low);
  c.issue_width = cfg.get_u64("issue_width", c.issue_width);
  c.bus_lanes = cfg.get_u64("bus_lanes", c.bus_lanes);
  c.drain_idle_timeout = cfg.get_u64("drain_idle_timeout", c.drain_idle_timeout);
  c.bg_write_guard = cfg.get_u64("bg_write_guard", c.bg_write_guard);
  c.bg_write_min = cfg.get_u64("bg_write_min", c.bg_write_min);
  c.bg_write_inflight_max =
      cfg.get_u64("bg_write_inflight_max", c.bg_write_inflight_max);
  if (c.issue_width == 0 || c.bus_lanes == 0) {
    throw std::runtime_error("ControllerConfig: zero issue_width/bus_lanes");
  }
  return c;
}

// The shipped configurations. Everything else links against these through
// controller.hpp's extern template declarations.
template class ControllerT<nvm::Bank>;
template class ControllerT<nvm::FgNvmBank>;
template class ControllerT<dram::DramBank>;

}  // namespace fgnvm::sched
