#include "sched/write_queue.hpp"

#include <stdexcept>

#include "common/bitutil.hpp"

namespace fgnvm::sched {

WriteQueue::WriteQueue(std::uint64_t capacity, std::uint64_t high,
                       std::uint64_t low, std::uint64_t line_bytes)
    : capacity_(capacity), high_(high), low_(low), line_bytes_(line_bytes) {
  if (high_ > capacity_ || low_ > high_) {
    throw std::invalid_argument("WriteQueue: need low <= high <= capacity");
  }
  if (!is_pow2(line_bytes_)) {
    throw std::invalid_argument("WriteQueue: line_bytes must be a power of 2");
  }
  // The pool is fully sized up front: slots never move or reallocate, so
  // the controller may hold slot indices across the request's lifetime.
  slots_.resize(capacity_);
  free_.reserve(capacity_);
  for (std::uint64_t i = 0; i < capacity_; ++i) {
    free_.push_back(static_cast<std::int32_t>(capacity_ - 1 - i));
  }
  by_line_.reserve(2 * capacity_ + 1);
}

std::int32_t WriteQueue::add_slot(const mem::MemRequest& req) {
  const Addr line = line_of(req.addr.addr);
  if (by_line_.find(line) != by_line_.end()) {
    ++coalesced_;
    return -1;
  }
  if (full()) throw std::runtime_error("WriteQueue::add on full queue");
  const std::int32_t slot = free_.back();
  free_.pop_back();
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.req = req;
  s.prev = tail_;
  s.next = -1;
  s.live = true;
  if (tail_ >= 0) {
    slots_[static_cast<std::size_t>(tail_)].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
  by_line_.emplace(line, slot);
  ++size_;
  return slot;
}

bool WriteQueue::update_drain() {
  if (!draining_ && size_ >= high_) {
    draining_ = true;
    ++drains_started_;
  } else if (draining_ && size_ <= low_) {
    draining_ = false;
  }
  return draining_;
}

void WriteQueue::remove_slot(std::int32_t slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (!s.live) {
    throw std::runtime_error("WriteQueue::remove_slot: slot not live");
  }
  if (s.prev >= 0) {
    slots_[static_cast<std::size_t>(s.prev)].next = s.next;
  } else {
    head_ = s.next;
  }
  if (s.next >= 0) {
    slots_[static_cast<std::size_t>(s.next)].prev = s.prev;
  } else {
    tail_ = s.prev;
  }
  by_line_.erase(line_of(s.req.addr.addr));
  s.live = false;
  s.prev = s.next = -1;
  free_.push_back(slot);
  --size_;
}

void WriteQueue::remove(RequestId id) {
  for (std::int32_t s = head_; s >= 0;
       s = slots_[static_cast<std::size_t>(s)].next) {
    if (slots_[static_cast<std::size_t>(s)].req.id == id) {
      remove_slot(s);
      return;
    }
  }
  throw std::runtime_error("WriteQueue::remove: id not found");
}

}  // namespace fgnvm::sched
