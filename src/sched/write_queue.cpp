#include "sched/write_queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitutil.hpp"

namespace fgnvm::sched {

WriteQueue::WriteQueue(std::uint64_t capacity, std::uint64_t high,
                       std::uint64_t low, std::uint64_t line_bytes)
    : capacity_(capacity), high_(high), low_(low), line_bytes_(line_bytes) {
  if (high_ > capacity_ || low_ > high_) {
    throw std::invalid_argument("WriteQueue: need low <= high <= capacity");
  }
  if (!is_pow2(line_bytes_)) {
    throw std::invalid_argument("WriteQueue: line_bytes must be a power of 2");
  }
}

bool WriteQueue::add(const mem::MemRequest& req) {
  const Addr line = line_of(req.addr.addr);
  for (auto& e : entries_) {
    if (line_of(e.addr.addr) == line) {
      ++coalesced_;
      return true;
    }
  }
  if (full()) throw std::runtime_error("WriteQueue::add on full queue");
  entries_.push_back(req);
  return false;
}

bool WriteQueue::covers(Addr line_addr) const {
  const Addr line = line_of(line_addr);
  return std::any_of(
      entries_.begin(), entries_.end(),
      [&](const mem::MemRequest& e) { return line_of(e.addr.addr) == line; });
}

bool WriteQueue::update_drain() {
  if (!draining_ && entries_.size() >= high_) {
    draining_ = true;
    ++drains_started_;
  } else if (draining_ && entries_.size() <= low_) {
    draining_ = false;
  }
  return draining_;
}

void WriteQueue::remove(RequestId id) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const mem::MemRequest& e) { return e.id == id; });
  if (it == entries_.end()) {
    throw std::runtime_error("WriteQueue::remove: id not found");
  }
  entries_.erase(it);
}

}  // namespace fgnvm::sched
