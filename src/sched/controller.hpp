// Per-channel memory controller.
//
// Implements the paper's scheduling setups:
//  * FCFS        — strictly in-order read service (reference point).
//  * FRFCFS      — first-ready (already-sensed segments issue first), then
//                  first-come-first-serve; writes buffered and drained in
//                  bursts between watermarks (Rixner et al.).
//  * FRFCFS_AUG  — the paper's "augmented FRFCFS": additionally SAG/CD-aware;
//                  issues writes opportunistically as Backgrounded Writes
//                  whenever the target (bank, SAG, CD) does not conflict with
//                  any queued read, instead of waiting for a drain burst.
//
// Multi-Issue (Figure 4) is modeled by `issue_width` commands per cycle and
// `bus_lanes` parallel data-bus lanes.
//
// Scheduling is index-driven (DESIGN.md §8): requests live in stable slots
// threaded with per-(bank, SAG) and per-(bank, row) intrusive lists
// (RequestIndex), issue selection walks only eligible group heads /
// open-row lists, and next_event() serves cached per-bank candidates that
// are recomputed only for banks whose state changed since the last query.
// The pre-index full-queue scans are kept as a reference oracle: with
// cross-checking on (FGNVM_PARANOID, or set_cross_check), every issue
// decision and next_event value is recomputed both ways and compared.
//
// Bank dispatch is static (DESIGN.md §9): the controller is a class template
// over the concrete bank type, so the hot candidate probes (earliest_*,
// segments_sensed, open_row_of) resolve at compile time — final concrete
// bank classes devirtualize, and header-inline queries inline into the
// selection loops. ControllerBase is the thin type-erased facade
// sys::MemorySystem drives (one virtual call per due-channel tick, none per
// candidate). ControllerT<nvm::Bank> keeps the fully virtual dispatch for
// tests and custom bank doubles; `Controller` aliases it for source
// compatibility. The shipped instantiations (nvm::Bank, nvm::FgNvmBank,
// dram::DramBank) are explicit — see controller.cpp; ControllerT bodies
// live in controller_impl.hpp and are not pulled into user TUs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/bus.hpp"
#include "mem/request.hpp"
#include "mem/timing.hpp"
#include "nvm/bank.hpp"
#include "obs/observer.hpp"
#include "sched/request_index.hpp"
#include "sched/write_queue.hpp"

namespace fgnvm::nvm {
class FgNvmBank;
}
namespace fgnvm::dram {
class DramBank;
}

namespace fgnvm::sched {

enum class SchedulerPolicy : std::uint8_t { kFcfs, kFrfcfs, kFrfcfsAugmented };

SchedulerPolicy scheduler_policy_from_string(const std::string& name);
const char* to_string(SchedulerPolicy policy);

/// Row-buffer management: open-page keeps rows sensed for future hits;
/// closed-page relinquishes a row as soon as no queued request wants it
/// (hides DRAM precharge in idle gaps; for NVM it only drops sensed state,
/// so open-page is the natural NVM default).
enum class PagePolicy : std::uint8_t { kOpen, kClosed };

PagePolicy page_policy_from_string(const std::string& name);
const char* to_string(PagePolicy policy);

struct ControllerConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFrfcfs;
  PagePolicy page_policy = PagePolicy::kOpen;
  std::uint64_t read_queue_cap = 32;  // Table 2: 32 queue entries
  std::uint64_t write_queue_cap = 64; // Table 2: 64 write drivers
  std::uint64_t wq_high = 32;
  std::uint64_t wq_low = 8;
  std::uint64_t issue_width = 1;      // commands per cycle (Multi-Issue > 1)
  std::uint64_t bus_lanes = 1;        // parallel data bursts (Multi-Issue > 1)
  Cycle drain_idle_timeout = 200;     // quiet cycles before a low-occupancy
                                      // write drain may start
  Cycle bg_write_guard = 150;         // a backgrounded write avoids SAGs the
                                      // read stream touched this recently
  std::uint64_t bg_write_min = 8;     // write-queue occupancy before
                                      // backgrounded writes start
  std::uint64_t bg_write_inflight_max = 8;  // concurrent backgrounded writes
                                            // (bounds read-tail exposure)

  static ControllerConfig from_config(const Config& cfg);
};

/// Factory for the banks of one channel (rank-major order).
using BankFactory = std::function<std::unique_ptr<nvm::Bank>()>;

namespace detail {
/// Mirrors sim::paranoid_mode(): FGNVM_PARANOID set, non-empty and not "0".
bool paranoid_env();
[[noreturn]] void throw_divergence(const char* what);
}  // namespace detail

/// Counters for the memory-side analytic fast-forward (DESIGN.md §12).
/// Deliberately kept out of the controller's StatSet: phase firing is a
/// host-performance detail that must not perturb the simulated stats the
/// eager/skip equivalence suites compare bit-for-bit.
struct PhaseStats {
  std::uint64_t retire_phases = 0;  // all-banks-idle-until-arrival entries
  std::uint64_t retire_events = 0;  // completions retired inside them
  std::uint64_t drain_phases = 0;   // pure write-drain entries
  std::uint64_t drain_writes = 0;   // writes issued inside them
  std::uint64_t burst_phases = 0;   // single-group row-hit read bursts
  std::uint64_t burst_reads = 0;    // reads issued inside them
};

/// Type-erased controller facade: everything sys::MemorySystem needs to
/// drive one channel. Costs one virtual call per operation on a channel
/// that actually has work — the per-candidate bank probes underneath are
/// statically dispatched inside the ControllerT instantiation.
class ControllerBase {
 public:
  virtual ~ControllerBase() = default;

  /// True if a new request of this type can be accepted this cycle.
  virtual bool can_accept(OpType op) const = 0;

  /// Accepts a request (precondition: can_accept). Writes are posted —
  /// they are reported complete immediately; reads complete via completed().
  virtual void enqueue(mem::MemRequest req, Cycle now) = 0;

  /// Advances one memory cycle: issues up to issue_width commands and
  /// retires finished reads into the completed() list.
  virtual void tick(Cycle now) = 0;

  /// Reads whose data burst finished at or before the last tick. The caller
  /// takes ownership (the list is cleared by this call).
  virtual std::vector<mem::MemRequest> take_completed() = 0;

  /// Allocation-free variant: appends the completed reads to `out` and
  /// clears the internal list. Hot-path API for the simulation loops.
  virtual void drain_completed(std::vector<mem::MemRequest>& out) = 0;

  /// Earliest cycle > now at which tick() could change any state or stat,
  /// given no new arrivals; kNeverCycle when fully idle. May undershoot
  /// (waking early is a no-op tick) but never overshoots — the
  /// event-skipping runner loops rely on this to stay bit-identical with
  /// cycle stepping.
  virtual Cycle next_event(Cycle now) const = 0;

  /// Runs this channel's event chain from `due` (its cached next_event
  /// value) up to but excluding `horizon`: ticks at every chain cycle
  /// < horizon and returns the first chain cycle >= horizon (or
  /// kNeverCycle when the channel goes idle). Exactly the ticks the
  /// event-skipping loop would run serially — completions accumulate in the
  /// completed() list and are not consulted mid-chain, so the caller must
  /// guarantee nothing outside the channel needs servicing before horizon
  /// (see completion_bound and DESIGN.md §9).
  virtual Cycle advance_to(Cycle due, Cycle horizon) = 0;

  /// Walks the event chain from `due` while the channel cannot accept `op`,
  /// recognizing analytic phases along the way. Returns the cycle at which
  /// the driver should resume: the cycle after the tick that freed
  /// capacity, or the first chain cycle >= horizon (kNeverCycle if the
  /// chain dies). The same serial tick schedule as advance_to — completions
  /// buffer in completed() and the caller drains them at the resume cycle.
  virtual Cycle advance_until_accept(Cycle due, OpType op, Cycle horizon) = 0;

  /// Analytic fast-forward (DESIGN.md §12): if the channel is in a steady
  /// phase at `now` (a due/wake cycle), replays that phase's event chain in
  /// closed form up to (excluding) `bound` and returns the next due cycle —
  /// which, like next_event, may undershoot the next actionable cycle but
  /// never overshoots it. Returns `now` when no phase applies (caller falls
  /// back to one eager tick). State and stats after the call are
  /// bit-identical to eager ticking through the same window.
  virtual Cycle advance_phase(Cycle now, Cycle bound) = 0;

  /// Host-side phase-engine telemetry (not part of simulated stats).
  virtual const PhaseStats& phase_stats() const = 0;
  /// Force the phase engine on/off (overrides the FGNVM_PHASE_ENGINE env
  /// default). Off, advance_phase always declines.
  virtual void set_phase_engine(bool on) = 0;
  /// Temporary phase decline, same contract as the drain-latch rule: while
  /// held, advance_phase returns `now` so every window is walked tick by
  /// tick. sys::HybridMemorySystem holds its channels while a row migration
  /// is in flight — the migration engine injects requests at loop-iteration
  /// cycles, and a closed-form replay must not run past one.
  virtual void set_phase_hold(bool held) = 0;

  /// Lower bound on the first cycle > now at which this channel could hand
  /// a completion to the caller: now+1 with completions already pending,
  /// else the earliest in-flight burst end, else (reads queued) the
  /// channel's next event plus the minimum read service time; kNeverCycle
  /// when no queued or in-flight read exists. Never overshoots the first
  /// completion delivery, so it is a safe advance_to horizon for a caller
  /// waiting only on completions.
  virtual Cycle completion_bound(Cycle now) const = 0;

  virtual bool idle() const = 0;

  virtual const std::vector<std::unique_ptr<nvm::Bank>>& banks() const = 0;
  virtual const mem::DataBus& bus() const = 0;
  virtual const WriteQueue& write_queue() const = 0;
  virtual const StatSet& stats() const = 0;
  virtual std::uint64_t pending_reads() const = 0;

  /// Enables the reference-oracle cross-check: every issue decision and
  /// next_event value is recomputed with the pre-index full-queue scans and
  /// compared (throws std::runtime_error on divergence). Also switched on
  /// by the FGNVM_PARANOID environment variable at construction.
  virtual void set_cross_check(bool on) = 0;
  virtual bool cross_check() const = 0;

  /// Attaches a request-trace collector (fgnvm::obs). Null (the default)
  /// disables collection: the hot paths then take one pointer test per hook
  /// and allocate nothing — simulated timing and stats are unchanged either
  /// way, since the collector is purely passive.
  virtual void set_collector(obs::ChannelCollector* collector) = 0;

  /// Accumulates this channel's contribution to an epoch sample.
  virtual void sample_obs(Cycle now, obs::ChannelSample& s) const = 0;
};

/// The controller, generic over the concrete bank type. BankT must be
/// nvm::Bank (fully virtual dispatch — the compatibility/test
/// configuration) or a final class derived from it; the factory must
/// produce exactly BankT instances. All shipped instantiations are
/// explicit (see the extern template declarations below).
template <typename BankT>
class ControllerT final : public ControllerBase {
 public:
  ControllerT(const mem::MemGeometry& geometry, const mem::TimingParams& timing,
              const ControllerConfig& cfg, const BankFactory& make_bank);

  bool can_accept(OpType op) const override;
  void enqueue(mem::MemRequest req, Cycle now) override;
  void tick(Cycle now) override;
  std::vector<mem::MemRequest> take_completed() override;
  void drain_completed(std::vector<mem::MemRequest>& out) override;
  Cycle next_event(Cycle now) const override;
  Cycle advance_to(Cycle due, Cycle horizon) override;
  Cycle advance_until_accept(Cycle due, OpType op, Cycle horizon) override;
  Cycle advance_phase(Cycle now, Cycle bound) override;
  const PhaseStats& phase_stats() const override { return phase_stats_; }
  void set_phase_engine(bool on) override { phase_enabled_ = on; }
  void set_phase_hold(bool held) override { phase_hold_ = held; }
  Cycle completion_bound(Cycle now) const override;
  bool idle() const override;

  const std::vector<std::unique_ptr<nvm::Bank>>& banks() const override {
    return banks_;
  }
  const mem::DataBus& bus() const override { return bus_; }
  const WriteQueue& write_queue() const override { return writes_; }
  const StatSet& stats() const override { return stats_; }
  std::uint64_t pending_reads() const override { return ridx_.size(); }

  void set_cross_check(bool on) override { cross_check_ = on; }
  bool cross_check() const override { return cross_check_; }

  void set_collector(obs::ChannelCollector* collector) override {
    obs_ = collector;
  }
  void sample_obs(Cycle now, obs::ChannelSample& s) const override;

 private:
  struct ReadSlot {
    mem::MemRequest req;
    bool live = false;
  };
  struct InFlight {
    mem::MemRequest req;
    Cycle done;
  };
  /// Outcome of a read-activate selection: the winning slot (or -1) and the
  /// demand-aggregated CD mask the ACT must sense.
  struct ActPick {
    std::int32_t slot = -1;
    std::uint64_t extra_cds = 0;
  };
  /// Outcome of a write selection: the winning write-queue slot (or -1) and
  /// whether it issues an ACT (vs. the column/data phase).
  struct WritePick {
    std::int32_t slot = -1;
    bool activate = false;
  };
  /// Cached per-bank next-event candidates (DESIGN.md §8). Minima are
  /// computed with a query time of 0 for pure_timing() banks (so they are
  /// valid at any later cycle, clamped at query time) and at the actual
  /// querying cycle otherwise. Flagged/plain split the sticky bus_blocked
  /// populations: only flagged candidates fold in bus availability, which
  /// is a query-time global and therefore distributes over the min.
  struct BankCand {
    Cycle read_col_plain = kNeverCycle;
    Cycle read_col_flagged = kNeverCycle;
    Cycle read_act = kNeverCycle;
    Cycle write_plain = kNeverCycle;
    Cycle write_flagged = kNeverCycle;
    Cycle write_bg_plain = kNeverCycle;    // guard folded per write
    Cycle write_bg_flagged = kNeverCycle;
  };
  /// Per-(bank, SAG)-group slices of the same minima (DESIGN.md §12),
  /// filled by the same recompute walk. The selectors gate each active
  /// group on its cached minimum before touching the bank, so a scan pays
  /// one load — not a row-hash probe plus timing probes — per not-yet-due
  /// group. Entries follow the same validity rule as BankCand: exact for
  /// pure_timing() banks whenever the bank is clean, and a group's entry
  /// is refreshed before use because inserting into an empty group dirties
  /// its bank. Read and write classes live in separate arrays since the
  /// two recompute halves walk different active-group sets.
  struct GroupReadCand {
    Cycle col_plain = kNeverCycle;
    Cycle col_flagged = kNeverCycle;
    Cycle act = kNeverCycle;
  };
  struct GroupWriteCand {
    Cycle plain = kNeverCycle;
    Cycle flagged = kNeverCycle;
    Cycle bg_plain = kNeverCycle;
    Cycle bg_flagged = kNeverCycle;
  };
  /// Lazily resolved stat handle: the counter is created on first bump so
  /// the stat-set shape stays identical to the string-keyed original (a
  /// counter that never fires must stay absent from reports).
  struct CounterHandle {
    std::uint64_t* value = nullptr;
  };

  BankT& bank_of(const mem::DecodedAddr& a);
  const BankT& bank_of(const mem::DecodedAddr& a) const;
  /// Concrete bank types read only row/sag/cd/cd_count in their timing
  /// probes (verified for FgNvmBank and DramBank), so the indexed hot scans
  /// synthesize that key image from the SoA index instead of loading the
  /// pooled 100+-byte MemRequest. The fully virtual nvm::Bank configuration
  /// keeps the pooled address — test doubles may inspect any field.
  static constexpr bool kLeanProbes = !std::is_same_v<BankT, nvm::Bank>;
  const mem::DecodedAddr& read_probe_addr(std::int32_t slot,
                                          mem::DecodedAddr& tmp) const;
  const mem::DecodedAddr& write_probe_addr(std::int32_t slot,
                                           mem::DecodedAddr& tmp) const;
  std::uint64_t bank_linear(const mem::DecodedAddr& a) const {
    return a.rank * geo_.banks_per_rank + a.bank;
  }
  std::uint64_t sag_group(const mem::DecodedAddr& a) const;
  void bump(CounterHandle& h, const char* name, std::uint64_t delta = 1) {
    if (!h.value) h.value = &stats_.counter_ref(name);
    *h.value += delta;
  }
  void mark_bank_dirty(std::uint64_t bank) const {
    bank_dirty_[bank] = 1;
    global_valid_ = false;
  }
  void refresh_global() const;

  std::int32_t alloc_read_slot();
  void free_read_slot(std::int32_t slot);

  /// One issue slot; returns true if a command was issued. `write_done`
  /// tracks whether a write command already issued this cycle — a 150 ns+
  /// program operation never needs more than one issue slot per cycle, and
  /// letting Multi-Issue inject writes every slot only lengthens read tails.
  bool try_issue(Cycle now, bool& write_done);
  bool try_issue_read_column(Cycle now);
  bool try_issue_read_activate(Cycle now);
  bool try_issue_write(Cycle now, bool background_only);

  // ---- shared issue-commit sequences: the exact state/stat mutations of
  // the try_issue_* paths, factored out so the analytic phase replays are
  // the same code the eager tick runs (bit-identity by construction) ------
  void commit_read_column(std::int32_t slot, Cycle now);
  void commit_write_column(std::int32_t slot, Cycle now, bool background_only);
  void retire_reads(Cycle now);

  // ---- analytic phase recognizers (DESIGN.md §12). Each returns the new
  // due cycle (> now) after replaying its phase's events in [now, bound),
  // or `now` when its preconditions do not hold at `now`. --------------
  Cycle phase_retire_only(Cycle now, Cycle bound);
  Cycle phase_write_drain(Cycle now, Cycle bound, const OpType* stop_accept);
  Cycle phase_read_burst(Cycle now, Cycle bound, const OpType* stop_accept);
  Cycle advance_phase_impl(Cycle now, Cycle bound, const OpType* stop_accept);

  // ---- indexed issue selection (side-effect free; commit happens in the
  // try_issue_* wrappers after the optional oracle comparison) ------------
  std::int32_t select_read_column_indexed(
      Cycle now, std::vector<std::int32_t>& to_flag) const;
  ActPick select_read_activate_indexed(Cycle now) const;
  WritePick select_write_indexed(Cycle now, bool background_only,
                                 std::vector<std::int32_t>& to_flag) const;
  Cycle next_event_indexed(Cycle now) const;
  void recompute_bank_cand(std::uint64_t bank, Cycle tq) const;
  bool write_conflicts_with_reads(const mem::DecodedAddr& w) const;

  /// next_event minus the completions-pending short-circuit. advance_to
  /// walks the chain with this so buffered completions (drained only at the
  /// horizon) do not degrade the window into per-cycle no-op ticks.
  Cycle next_event_internal(Cycle now) const;

  // ---- reference oracle: the pre-index O(queue) scans, preserved verbatim
  // over the global FIFO lists. FCFS read selection keeps inherently
  // arrival-ordered early-exit semantics, so it runs on these directly. ---
  std::int32_t select_read_column_reference(
      Cycle now, std::vector<std::int32_t>& to_flag) const;
  ActPick select_read_activate_reference(Cycle now) const;
  WritePick select_write_reference(Cycle now, bool background_only,
                                   std::vector<std::int32_t>& to_flag) const;
  Cycle next_event_reference(Cycle now) const;
  bool write_conflicts_with_reads_reference(const mem::DecodedAddr& w) const;
  void verify_pick(const char* what, bool same_pick,
                   std::vector<std::int32_t>& flags,
                   std::vector<std::int32_t>& ref_flags) const;

  /// Applies the sticky bus_blocked flags a selection produced, dirtying
  /// the affected banks on false -> true transitions.
  void apply_read_flags(const std::vector<std::int32_t>& slots);
  void apply_write_flags(const std::vector<std::int32_t>& slots);

  /// End-of-tick classification of why each still-queued request did not
  /// issue this cycle; feeds the obs collector (obs_ != nullptr only).
  void observe_blocking(Cycle now);
  /// Closed-page hook: closes `a`'s row unless another queued request
  /// still wants it.
  void maybe_close_row(const mem::DecodedAddr& a, Cycle now);

  mem::MemGeometry geo_;
  mem::TimingParams timing_;
  ControllerConfig cfg_;

  std::vector<std::unique_ptr<nvm::Bank>> banks_;
  std::vector<BankT*> typed_;  // banks_ downcast once at construction; the
                               // hot paths probe through these so the calls
                               // devirtualize (BankT final) and inline
  mem::DataBus bus_;

  // Queued reads: stable slot pool (sized once, never reallocates — slot
  // indices and references stay valid for a request's lifetime) plus the
  // group/row index. Arrival order lives in the index's global FIFO list.
  std::vector<ReadSlot> rpool_;
  std::vector<std::int32_t> rfree_;
  const ReadSlot* rpool_base_ = nullptr;  // reallocation guard (assert only)
  RequestIndex ridx_;

  WriteQueue writes_;
  RequestIndex widx_;  // queued writes, keyed by WriteQueue slot index

  std::vector<InFlight> inflight_reads_;   // column issued, burst pending
  std::vector<mem::MemRequest> completed_;
  Cycle last_read_activity_ = 0;  // last read enqueue/issue (drain gating)
  std::vector<Cycle> sag_last_read_;  // per (bank, SAG): last read touch
  std::vector<Cycle> write_done_times_;  // in-flight write completions
  std::uint64_t seq_counter_ = 0;  // sched_seq stamp (arrival total order)

  // next_event candidate cache (mutable: refreshed inside const queries).
  mutable std::vector<BankCand> bank_cand_;
  mutable std::vector<GroupReadCand> group_rcand_;   // per (bank, SAG) group
  mutable std::vector<GroupWriteCand> group_wcand_;
  mutable std::vector<std::uint8_t> bank_dirty_;
  std::vector<std::uint8_t> bank_pure_;  // pure_timing(), fixed at build
  bool all_pure_ = false;                // every bank is pure_timing()
  // Fold of bank_cand_ over all banks, valid while no bank has been dirtied
  // since the fold (only ever valid when all_pure_). Lets the selectors
  // prove "nothing issuable, nothing to flag" in O(1) without touching a
  // single group.
  mutable BankCand global_cand_;
  mutable bool global_valid_ = false;

  bool cross_check_ = false;
  bool phase_enabled_ = true;  // FGNVM_PHASE_ENGINE env default, see ctor
  bool phase_hold_ = false;    // see ControllerBase::set_phase_hold
  PhaseStats phase_stats_;

  // Scratch vectors for the selection paths (members so the hot paths stay
  // allocation-free after warm-up).
  mutable std::vector<std::int32_t> scratch_flags_;
  mutable std::vector<std::int32_t> scratch_ref_flags_;
  mutable std::vector<std::int32_t> scratch_cands_;

  obs::ChannelCollector* obs_ = nullptr;  // request tracing; null = disabled

  StatSet stats_;

  // Cached hot-path stat handles (see CounterHandle).
  CounterHandle h_reads_accepted_, h_reads_forwarded_, h_reads_row_hit_;
  CounterHandle h_writes_accepted_, h_writes_coalesced_;
  CounterHandle h_cmd_read_, h_cmd_act_read_, h_cmd_act_write_;
  CounterHandle h_cmd_write_, h_cmd_write_bg_, h_cmd_write_drain_;
  CounterHandle h_cmd_close_row_, h_bus_col_conflicts_;
  Distribution* d_read_latency_ = nullptr;
  Histogram* h_read_latency_hist_ = nullptr;
};

/// The shipped instantiations live in controller.cpp; everything else sees
/// only these declarations (ControllerT bodies stay out of user TUs).
extern template class ControllerT<nvm::Bank>;
extern template class ControllerT<nvm::FgNvmBank>;
extern template class ControllerT<dram::DramBank>;

/// Source-compatibility alias: the fully virtual configuration, used by the
/// controller unit/differential tests and anything not hot enough to pick a
/// concrete bank type.
using Controller = ControllerT<nvm::Bank>;

}  // namespace fgnvm::sched
