// Per-channel memory controller.
//
// Implements the paper's scheduling setups:
//  * FCFS        — strictly in-order read service (reference point).
//  * FRFCFS      — first-ready (already-sensed segments issue first), then
//                  first-come-first-serve; writes buffered and drained in
//                  bursts between watermarks (Rixner et al.).
//  * FRFCFS_AUG  — the paper's "augmented FRFCFS": additionally SAG/CD-aware;
//                  issues writes opportunistically as Backgrounded Writes
//                  whenever the target (bank, SAG, CD) does not conflict with
//                  any queued read, instead of waiting for a drain burst.
//
// Multi-Issue (Figure 4) is modeled by `issue_width` commands per cycle and
// `bus_lanes` parallel data-bus lanes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/bus.hpp"
#include "mem/request.hpp"
#include "mem/timing.hpp"
#include "nvm/bank.hpp"
#include "obs/observer.hpp"
#include "sched/write_queue.hpp"

namespace fgnvm::sched {

enum class SchedulerPolicy : std::uint8_t { kFcfs, kFrfcfs, kFrfcfsAugmented };

SchedulerPolicy scheduler_policy_from_string(const std::string& name);
const char* to_string(SchedulerPolicy policy);

/// Row-buffer management: open-page keeps rows sensed for future hits;
/// closed-page relinquishes a row as soon as no queued request wants it
/// (hides DRAM precharge in idle gaps; for NVM it only drops sensed state,
/// so open-page is the natural NVM default).
enum class PagePolicy : std::uint8_t { kOpen, kClosed };

PagePolicy page_policy_from_string(const std::string& name);
const char* to_string(PagePolicy policy);

struct ControllerConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFrfcfs;
  PagePolicy page_policy = PagePolicy::kOpen;
  std::uint64_t read_queue_cap = 32;  // Table 2: 32 queue entries
  std::uint64_t write_queue_cap = 64; // Table 2: 64 write drivers
  std::uint64_t wq_high = 32;
  std::uint64_t wq_low = 8;
  std::uint64_t issue_width = 1;      // commands per cycle (Multi-Issue > 1)
  std::uint64_t bus_lanes = 1;        // parallel data bursts (Multi-Issue > 1)
  Cycle drain_idle_timeout = 200;     // quiet cycles before a low-occupancy
                                      // write drain may start
  Cycle bg_write_guard = 150;         // a backgrounded write avoids SAGs the
                                      // read stream touched this recently
  std::uint64_t bg_write_min = 8;     // write-queue occupancy before
                                      // backgrounded writes start
  std::uint64_t bg_write_inflight_max = 8;  // concurrent backgrounded writes
                                            // (bounds read-tail exposure)

  static ControllerConfig from_config(const Config& cfg);
};

/// Factory for the banks of one channel (rank-major order).
using BankFactory = std::function<std::unique_ptr<nvm::Bank>()>;

class Controller {
 public:
  Controller(const mem::MemGeometry& geometry, const mem::TimingParams& timing,
             const ControllerConfig& cfg, const BankFactory& make_bank);

  /// True if a new request of this type can be accepted this cycle.
  bool can_accept(OpType op) const;

  /// Accepts a request (precondition: can_accept). Writes are posted —
  /// they are reported complete immediately; reads complete via completed().
  void enqueue(mem::MemRequest req, Cycle now);

  /// Advances one memory cycle: issues up to issue_width commands and
  /// retires finished reads into the completed() list.
  void tick(Cycle now);

  /// Reads whose data burst finished at or before the last tick. The caller
  /// takes ownership (the list is cleared by this call).
  std::vector<mem::MemRequest> take_completed();

  /// Allocation-free variant: appends the completed reads to `out` and
  /// clears the internal list. Hot-path API for the simulation loops.
  void drain_completed(std::vector<mem::MemRequest>& out);

  /// Earliest cycle > now at which tick() could change any state or stat,
  /// given no new arrivals; kNeverCycle when fully idle. May undershoot
  /// (waking early is a no-op) but never overshoots — the event-skipping
  /// runner loops rely on this to stay bit-identical with cycle stepping.
  Cycle next_event(Cycle now) const;

  bool idle() const;

  const std::vector<std::unique_ptr<nvm::Bank>>& banks() const { return banks_; }
  const mem::DataBus& bus() const { return bus_; }
  const WriteQueue& write_queue() const { return writes_; }
  const StatSet& stats() const { return stats_; }
  std::uint64_t pending_reads() const { return reads_.size(); }

  /// Attaches a request-trace collector (fgnvm::obs). Null (the default)
  /// disables collection: the hot paths then take one pointer test per hook
  /// and allocate nothing — simulated timing and stats are unchanged either
  /// way, since the collector is purely passive.
  void set_collector(obs::ChannelCollector* collector) { obs_ = collector; }

  /// Accumulates this channel's contribution to an epoch sample.
  void sample_obs(Cycle now, obs::ChannelSample& s) const;

 private:
  struct PendingRead {
    mem::MemRequest req;
  };
  struct InFlight {
    mem::MemRequest req;
    Cycle done;
  };

  nvm::Bank& bank_of(const mem::DecodedAddr& a);
  const nvm::Bank& bank_of(const mem::DecodedAddr& a) const;
  std::uint64_t sag_group(const mem::DecodedAddr& a) const;

  /// Allocation-free oldest-per-(bank,SAG) tracking for the queue walks:
  /// begin_group_scan() opens a fresh scan, first_in_group(g) is true exactly
  /// once per group per scan. Epoch-stamped so no clearing is ever needed.
  void begin_group_scan() const { ++group_scan_; }
  bool first_in_group(std::uint64_t g) const {
    if (group_stamp_[g] == group_scan_) return false;
    group_stamp_[g] = group_scan_;
    return true;
  }

  /// One issue slot; returns true if a command was issued. `write_done`
  /// tracks whether a write command already issued this cycle — a 150 ns+
  /// program operation never needs more than one issue slot per cycle, and
  /// letting Multi-Issue inject writes every slot only lengthens read tails.
  bool try_issue(Cycle now, bool& write_done);
  bool try_issue_read_column(Cycle now);
  bool try_issue_read_activate(Cycle now);
  bool try_issue_write(Cycle now, bool background_only);
  bool write_conflicts_with_reads(const mem::DecodedAddr& w) const;
  /// End-of-tick classification of why each still-queued request did not
  /// issue this cycle; feeds the obs collector (obs_ != nullptr only).
  void observe_blocking(Cycle now);
  /// Closed-page hook: closes `a`'s row unless another queued request
  /// still wants it.
  void maybe_close_row(const mem::DecodedAddr& a, Cycle now);

  mem::MemGeometry geo_;
  mem::TimingParams timing_;
  ControllerConfig cfg_;

  std::vector<std::unique_ptr<nvm::Bank>> banks_;
  mem::DataBus bus_;
  std::vector<PendingRead> reads_;  // FIFO arrival order
  WriteQueue writes_;
  std::vector<InFlight> inflight_reads_;   // column issued, burst pending
  std::vector<mem::MemRequest> completed_;
  Cycle last_read_activity_ = 0;  // last read enqueue/issue (drain gating)
  std::vector<Cycle> sag_last_read_;  // per (bank, SAG): last read touch
  std::vector<Cycle> write_done_times_;  // in-flight write completions
  mutable std::vector<std::uint64_t> group_stamp_;  // see first_in_group
  mutable std::uint64_t group_scan_ = 0;
  obs::ChannelCollector* obs_ = nullptr;  // request tracing; null = disabled

  StatSet stats_;
};

}  // namespace fgnvm::sched
