// Intrusive slot-based request indexing for the scheduler hot paths.
//
// The controller keeps queued requests in stable slots (read pool /
// write-queue slots) and this index threads three doubly-linked lists
// through them, all in arrival (FIFO) order:
//
//  * a global queue list — the pre-index `reads_` vector walk;
//  * a per-(bank, SAG) group list — so "oldest per group" is the group
//    head, with no epoch-stamped scan machinery;
//  * a per-(bank, row) list (hash-indexed) — so demand-aggregated partial
//    activation and obs ACT-stamping visit only same-row requests.
//
// On top of the lists it maintains the aggregate occupancy the scheduler
// needs in O(1): per-bank request counts, per-(bank, CD) interval counts
// with a derived per-bank CD bitmask (write/read conflict tests), and
// swap-removable vectors of the currently non-empty groups (global and
// per-bank) so issue selection touches only eligible groups.
//
// Storage is struct-of-arrays (DESIGN.md §12): the six link cursors, the
// arrival sequence numbers, the packed address keys (row / sag / cd /
// cd_count), the line-CD bitmasks, and the sticky bus_blocked flags each
// live in their own cache-line-aligned array, sized once at init(). The
// selection and candidate-recompute walks in the controller read only these
// compact arrays — the fat MemRequest records in the slot pools are touched
// only to commit an issue — so a probe scan streams a few bytes per
// candidate instead of pulling a 100+-byte struct per hop. Insert captures
// the key/seq/flag image; set_flag() keeps the flag mirror in sync when the
// controller marks a request bus-blocked.
//
// Invariants (see DESIGN.md §8):
//  * every list preserves arrival order: head == oldest == min sched_seq;
//  * a group is listed in active_groups()/active_groups_of_bank() iff its
//    count > 0; a (bank, row) key is present iff its list is non-empty;
//  * cd_mask(bank) has bit c set iff some member of `bank` covers CD c;
//  * seq/row/sag/cd/cds/flagged mirror the pooled request while it is
//    queued (flagged via set_flag).
//
// All operations are O(1) except the (bank, row) hash probe, which hits a
// flat linear-probing table sized at init() to keep the load factor ≤ 1/4
// (at most one distinct row per occupied slot) — no allocation ever happens
// after init().
#pragma once

#include <cassert>
#include <cstdint>
#include <new>
#include <vector>

#include "common/types.hpp"
#include "mem/geometry.hpp"

namespace fgnvm::sched {

/// Minimal cache-line-aligning allocator for the SoA arrays: the hot scans
/// stride one array at a time, so each array starting on its own line keeps
/// them from sharing (and false-sharing) tails.
template <typename T>
struct CacheAlignedAlloc {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};
  CacheAlignedAlloc() = default;
  template <typename U>
  CacheAlignedAlloc(const CacheAlignedAlloc<U>&) {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) { ::operator delete(p, kAlign); }
  template <typename U>
  bool operator==(const CacheAlignedAlloc<U>&) const {
    return true;
  }
};

template <typename T>
using AlignedVec = std::vector<T, CacheAlignedAlloc<T>>;

class RequestIndex {
 public:
  RequestIndex() = default;

  /// `slot_cap` bounds the slot ids ever inserted; `num_banks` is the
  /// rank-major bank count of the channel.
  void init(std::uint64_t slot_cap, std::uint64_t num_banks,
            std::uint64_t num_sags, std::uint64_t num_cds) {
    num_sags_ = num_sags;
    num_cds_ = num_cds;
    qprev_.assign(slot_cap, -1);
    qnext_.assign(slot_cap, -1);
    gprev_.assign(slot_cap, -1);
    gnext_.assign(slot_cap, -1);
    rprev_.assign(slot_cap, -1);
    rnext_.assign(slot_cap, -1);
    seq_.assign(slot_cap, 0);
    row_.assign(slot_cap, 0);
    bank_.assign(slot_cap, 0);
    meta_.assign(slot_cap, 0);
    cds_.assign(slot_cap, 0);
    flag_.assign(slot_cap, 0);
    groups_.assign(num_banks * num_sags, Group{});
    active_all_.clear();
    active_all_.reserve(groups_.size());
    active_bank_.assign(num_banks, {});
    for (auto& v : active_bank_) v.reserve(num_sags);
    bank_count_.assign(num_banks, 0);
    cd_count_.assign(num_banks * num_cds, 0);
    cd_mask_.assign(num_banks, 0);
    std::uint64_t buckets = 4;
    while (buckets < 4 * slot_cap) buckets <<= 1;
    rows_.assign(buckets, RowEntry{});
    row_mask_ = buckets - 1;
    qhead_ = qtail_ = -1;
    size_ = 0;
    flagged_count_ = 0;
  }

  bool empty() const { return size_ == 0; }
  std::uint64_t size() const { return size_; }
  /// Number of queued members with the sticky bus_blocked flag set — the
  /// phase engine's O(1) "no flagged candidates" precondition.
  std::uint64_t flagged_count() const { return flagged_count_; }

  void insert(std::int32_t slot, std::uint64_t bank, const mem::DecodedAddr& a,
              std::uint64_t seq, bool flagged = false) {
    const auto i = static_cast<std::size_t>(slot);
    seq_[i] = seq;
    row_[i] = static_cast<std::uint32_t>(a.row);
    bank_[i] = static_cast<std::uint32_t>(bank);
    meta_[i] = static_cast<std::uint32_t>(a.sag) << 16 |
               static_cast<std::uint32_t>(a.cd) << 8 |
               static_cast<std::uint32_t>(a.cd_count);
    std::uint64_t cds = 0;
    for (std::uint64_t c = 0; c < a.cd_count; ++c) cds |= 1ULL << (a.cd + c);
    cds_[i] = cds;
    flag_[i] = flagged ? 1 : 0;
    flagged_count_ += flagged ? 1 : 0;

    qprev_[i] = qtail_;
    qnext_[i] = -1;
    if (qtail_ >= 0) {
      qnext_[static_cast<std::size_t>(qtail_)] = slot;
    } else {
      qhead_ = slot;
    }
    qtail_ = slot;
    ++size_;

    const std::uint64_t g = bank * num_sags_ + a.sag;
    Group& grp = groups_[g];
    gprev_[i] = grp.tail;
    gnext_[i] = -1;
    if (grp.tail >= 0) {
      gnext_[static_cast<std::size_t>(grp.tail)] = slot;
    } else {
      grp.head = slot;
    }
    grp.tail = slot;
    if (grp.count++ == 0) activate_group(g, bank);

    RowEntry& row = row_find_or_insert(row_key(bank, a.row));
    rprev_[i] = row.tail;
    rnext_[i] = -1;
    if (row.tail >= 0) {
      rnext_[static_cast<std::size_t>(row.tail)] = slot;
    } else {
      row.head = slot;
    }
    row.tail = slot;
    ++row.count;
    row.cds |= cds;

    ++bank_count_[bank];
    for (std::uint64_t c = 0; c < a.cd_count; ++c) {
      const std::uint64_t k = bank * num_cds_ + a.cd + c;
      if (cd_count_[k]++ == 0) cd_mask_[bank] |= 1ULL << (a.cd + c);
    }
  }

  /// Removes `slot` using the key image captured at insert — callers no
  /// longer thread the request's address through.
  void remove(std::int32_t slot, std::uint64_t bank) {
    const auto i = static_cast<std::size_t>(slot);
    if (qprev_[i] >= 0) {
      qnext_[static_cast<std::size_t>(qprev_[i])] = qnext_[i];
    } else {
      qhead_ = qnext_[i];
    }
    if (qnext_[i] >= 0) {
      qprev_[static_cast<std::size_t>(qnext_[i])] = qprev_[i];
    } else {
      qtail_ = qprev_[i];
    }
    --size_;

    const std::uint64_t g = bank * num_sags_ + sag(slot);
    Group& grp = groups_[g];
    if (gprev_[i] >= 0) {
      gnext_[static_cast<std::size_t>(gprev_[i])] = gnext_[i];
    } else {
      grp.head = gnext_[i];
    }
    if (gnext_[i] >= 0) {
      gprev_[static_cast<std::size_t>(gnext_[i])] = gprev_[i];
    } else {
      grp.tail = gprev_[i];
    }
    if (--grp.count == 0) deactivate_group(g, bank);

    const std::uint64_t rk = row_key(bank, row_[i]);
    const std::uint64_t ri = row_find(rk);
    assert(ri != kNoBucket);
    RowEntry& row = rows_[ri];
    if (rprev_[i] >= 0) {
      rnext_[static_cast<std::size_t>(rprev_[i])] = rnext_[i];
    } else {
      row.head = rnext_[i];
    }
    if (rnext_[i] >= 0) {
      rprev_[static_cast<std::size_t>(rnext_[i])] = rprev_[i];
    } else {
      row.tail = rprev_[i];
    }
    if (--row.count == 0) {
      row_erase(ri);
    } else {
      // OR-aggregates are not subtractable: rebuild the mask from the
      // remaining members. Row lists are short (bounded by same-row
      // occupancy, not queue depth), and one rebuild per removal replaces
      // the per-query walks the selectors and candidate recomputes did.
      std::uint64_t m = 0;
      for (std::int32_t s = row.head; s >= 0;
           s = rnext_[static_cast<std::size_t>(s)]) {
        m |= cds_[static_cast<std::size_t>(s)];
      }
      row.cds = m;
    }

    --bank_count_[bank];
    const std::uint64_t cd0 = cd(slot);
    const std::uint64_t cdn = cd_count_of(slot);
    for (std::uint64_t c = 0; c < cdn; ++c) {
      const std::uint64_t k = bank * num_cds_ + cd0 + c;
      if (--cd_count_[k] == 0) cd_mask_[bank] &= ~(1ULL << (cd0 + c));
    }
    qprev_[i] = qnext_[i] = gprev_[i] = gnext_[i] = rprev_[i] = rnext_[i] = -1;
    flagged_count_ -= flag_[i] != 0 ? 1 : 0;
    flag_[i] = 0;
  }

  // ---- per-slot key image (valid while the slot is queued) --------------
  std::uint64_t seq(std::int32_t slot) const {
    return seq_[static_cast<std::size_t>(slot)];
  }
  std::uint64_t row_of(std::int32_t slot) const {
    return row_[static_cast<std::size_t>(slot)];
  }
  /// Linear bank id captured at insert — lets the hot scans reach the
  /// owning bank without touching the pooled request.
  std::uint64_t bank_of(std::int32_t slot) const {
    return bank_[static_cast<std::size_t>(slot)];
  }
  std::uint64_t sag(std::int32_t slot) const {
    return meta_[static_cast<std::size_t>(slot)] >> 16;
  }
  std::uint64_t cd(std::int32_t slot) const {
    return (meta_[static_cast<std::size_t>(slot)] >> 8) & 0xFF;
  }
  std::uint64_t cd_count_of(std::int32_t slot) const {
    return meta_[static_cast<std::size_t>(slot)] & 0xFF;
  }
  /// Line-CD bitmask captured at insert (== the bank's line_cds(addr)).
  std::uint64_t cds(std::int32_t slot) const {
    return cds_[static_cast<std::size_t>(slot)];
  }
  bool flagged(std::int32_t slot) const {
    return flag_[static_cast<std::size_t>(slot)] != 0;
  }
  /// Mirrors MemRequest::bus_blocked for the hot scans.
  void set_flag(std::int32_t slot, bool on) {
    const std::uint8_t v = on ? 1 : 0;
    std::uint8_t& f = flag_[static_cast<std::size_t>(slot)];
    flagged_count_ += static_cast<std::uint64_t>(v) - f;
    f = v;
  }

  // ---- global FIFO ------------------------------------------------------
  std::int32_t queue_head() const { return qhead_; }
  std::int32_t queue_next(std::int32_t slot) const {
    return qnext_[static_cast<std::size_t>(slot)];
  }

  // ---- per-(bank, SAG) groups ------------------------------------------
  std::int32_t group_head(std::uint64_t group) const {
    return groups_[group].head;
  }
  std::uint64_t group_count(std::uint64_t group) const {
    return groups_[group].count;
  }
  /// True iff `slot` is the oldest member of its (bank, SAG) group —
  /// exactly the requests the pre-index epoch-stamped scan called
  /// "first in group".
  bool is_group_head(std::int32_t slot) const {
    return gprev_[static_cast<std::size_t>(slot)] < 0;
  }
  /// Global group ids (bank * num_sags + sag) with at least one member.
  /// Unordered — callers needing arrival order sort by sched_seq.
  const std::vector<std::uint32_t>& active_groups() const {
    return active_all_;
  }
  const std::vector<std::uint32_t>& active_groups_of_bank(
      std::uint64_t bank) const {
    return active_bank_[bank];
  }

  // ---- per-(bank, row) lists -------------------------------------------
  std::int32_t row_head(std::uint64_t bank, std::uint64_t row) const {
    const std::uint64_t i = row_find(row_key(bank, row));
    return i == kNoBucket ? -1 : rows_[i].head;
  }
  std::int32_t row_next(std::int32_t slot) const {
    return rnext_[static_cast<std::size_t>(slot)];
  }
  std::uint64_t row_count(std::uint64_t bank, std::uint64_t row) const {
    const std::uint64_t i = row_find(row_key(bank, row));
    return i == kNoBucket ? 0 : rows_[i].count;
  }
  /// OR of the line-CD bitmasks of every queued request to (bank, row) —
  /// the demand-aggregated partial-activation mask, maintained on
  /// insert/remove so callers skip the per-query list walk.
  std::uint64_t row_cds(std::uint64_t bank, std::uint64_t row) const {
    const std::uint64_t i = row_find(row_key(bank, row));
    return i == kNoBucket ? 0 : rows_[i].cds;
  }
  /// Hints the next row/group-list hop's probe image (seq, key fields,
  /// line-CD mask) into cache while the current member's bank probe runs.
  void prefetch(std::int32_t slot) const {
    if (slot < 0) return;
    const auto i = static_cast<std::size_t>(slot);
    __builtin_prefetch(&seq_[i]);
    __builtin_prefetch(&row_[i]);
    __builtin_prefetch(&cds_[i]);
  }

  // ---- aggregates -------------------------------------------------------
  std::uint64_t bank_count(std::uint64_t bank) const {
    return bank_count_[bank];
  }
  std::uint64_t cd_mask(std::uint64_t bank) const { return cd_mask_[bank]; }
  /// True iff any member of `bank` covers a CD in [cd, cd + cd_count).
  bool cd_overlap(std::uint64_t bank, std::uint64_t cd,
                  std::uint64_t cd_count) const {
    const std::uint64_t span =
        cd_count >= 64 ? ~0ULL : ((1ULL << cd_count) - 1) << cd;
    return (cd_mask_[bank] & span) != 0;
  }
  /// Mask variant for callers that already hold a line-CD bitmask.
  bool cd_overlap_mask(std::uint64_t bank, std::uint64_t mask) const {
    return (cd_mask_[bank] & mask) != 0;
  }

 private:
  struct Group {
    std::int32_t head = -1, tail = -1;
    std::uint32_t count = 0;
    std::int32_t pos_all = -1, pos_bank = -1;  // active-vector positions
  };
  static constexpr std::uint64_t kEmptyKey = ~0ULL;
  static constexpr std::uint64_t kNoBucket = ~0ULL;
  /// One (bank, row) list in the flat linear-probing table. kEmptyKey marks
  /// a vacant bucket; valid keys never collide with it (bank and row counts
  /// are far below the 2^24 / 2^40 split).
  struct RowEntry {
    std::uint64_t key = kEmptyKey;
    std::int32_t head = -1, tail = -1;
    std::uint32_t count = 0;
    std::uint64_t cds = 0;  // OR of members' line-CD masks (row_cds)
  };

  static std::uint64_t row_key(std::uint64_t bank, std::uint64_t row) {
    return (bank << 40) ^ row;  // rows_per_bank is far below 2^40
  }

  std::uint64_t row_bucket(std::uint64_t key) const {
    // splitmix64 finalizer: cheap, well-mixed for sequential row numbers.
    std::uint64_t x = key;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return (x ^ (x >> 31)) & row_mask_;
  }

  std::uint64_t row_find(std::uint64_t key) const {
    for (std::uint64_t i = row_bucket(key);; i = (i + 1) & row_mask_) {
      if (rows_[i].key == key) return i;
      if (rows_[i].key == kEmptyKey) return kNoBucket;
    }
  }

  RowEntry& row_find_or_insert(std::uint64_t key) {
    assert(key != kEmptyKey);
    for (std::uint64_t i = row_bucket(key);; i = (i + 1) & row_mask_) {
      if (rows_[i].key == key) return rows_[i];
      if (rows_[i].key == kEmptyKey) {
        rows_[i].key = key;
        return rows_[i];
      }
    }
  }

  /// Standard open-addressing deletion: vacate the bucket, then re-place
  /// any cluster member that probing can no longer reach through the hole.
  void row_erase(std::uint64_t i) {
    rows_[i] = RowEntry{};
    for (std::uint64_t j = (i + 1) & row_mask_; rows_[j].key != kEmptyKey;
         j = (j + 1) & row_mask_) {
      const std::uint64_t home = row_bucket(rows_[j].key);
      const bool reachable =
          i <= j ? (home > i && home <= j) : (home > i || home <= j);
      if (!reachable) {
        rows_[i] = rows_[j];
        rows_[j] = RowEntry{};
        i = j;
      }
    }
  }

  void activate_group(std::uint64_t g, std::uint64_t bank) {
    Group& grp = groups_[g];
    grp.pos_all = static_cast<std::int32_t>(active_all_.size());
    active_all_.push_back(static_cast<std::uint32_t>(g));
    auto& per_bank = active_bank_[bank];
    grp.pos_bank = static_cast<std::int32_t>(per_bank.size());
    per_bank.push_back(static_cast<std::uint32_t>(g));
  }

  void deactivate_group(std::uint64_t g, std::uint64_t bank) {
    Group& grp = groups_[g];
    const std::uint32_t last_all = active_all_.back();
    active_all_[static_cast<std::size_t>(grp.pos_all)] = last_all;
    groups_[last_all].pos_all = grp.pos_all;
    active_all_.pop_back();
    auto& per_bank = active_bank_[bank];
    const std::uint32_t last_bank = per_bank.back();
    per_bank[static_cast<std::size_t>(grp.pos_bank)] = last_bank;
    groups_[last_bank].pos_bank = grp.pos_bank;
    per_bank.pop_back();
    grp.pos_all = grp.pos_bank = -1;
  }

  std::uint64_t num_sags_ = 1;
  std::uint64_t num_cds_ = 1;
  // SoA link cursors and key images (see the header comment): one
  // cache-line-aligned array per field.
  AlignedVec<std::int32_t> qprev_, qnext_;  // global FIFO
  AlignedVec<std::int32_t> gprev_, gnext_;  // (bank, SAG) FIFO
  AlignedVec<std::int32_t> rprev_, rnext_;  // (bank, row) FIFO
  AlignedVec<std::uint64_t> seq_;           // sched_seq mirror
  AlignedVec<std::uint32_t> row_;           // row within bank
  AlignedVec<std::uint32_t> bank_;          // linear bank id
  AlignedVec<std::uint32_t> meta_;          // sag << 16 | cd << 8 | cd_count
  AlignedVec<std::uint64_t> cds_;           // line-CD bitmask
  AlignedVec<std::uint8_t> flag_;           // bus_blocked mirror
  std::vector<Group> groups_;
  std::vector<std::uint32_t> active_all_;
  std::vector<std::vector<std::uint32_t>> active_bank_;
  std::vector<RowEntry> rows_;
  std::uint64_t row_mask_ = 0;
  std::vector<std::uint64_t> bank_count_;
  std::vector<std::uint32_t> cd_count_;  // bank * num_cds + cd
  std::vector<std::uint64_t> cd_mask_;   // per bank
  std::int32_t qhead_ = -1, qtail_ = -1;
  std::uint64_t size_ = 0;
  std::uint64_t flagged_count_ = 0;
};

}  // namespace fgnvm::sched
