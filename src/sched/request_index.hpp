// Intrusive slot-based request indexing for the scheduler hot paths.
//
// The controller keeps queued requests in stable slots (read pool /
// write-queue slots) and this index threads three doubly-linked lists
// through them, all in arrival (FIFO) order:
//
//  * a global queue list — the pre-index `reads_` vector walk;
//  * a per-(bank, SAG) group list — so "oldest per group" is the group
//    head, with no epoch-stamped scan machinery;
//  * a per-(bank, row) list (hash-indexed) — so demand-aggregated partial
//    activation and obs ACT-stamping visit only same-row requests.
//
// On top of the lists it maintains the aggregate occupancy the scheduler
// needs in O(1): per-bank request counts, per-(bank, CD) interval counts
// with a derived per-bank CD bitmask (write/read conflict tests), and
// swap-removable vectors of the currently non-empty groups (global and
// per-bank) so issue selection touches only eligible groups.
//
// Invariants (see DESIGN.md §8):
//  * every list preserves arrival order: head == oldest == min sched_seq;
//  * a group is listed in active_groups()/active_groups_of_bank() iff its
//    count > 0; a (bank, row) key is present iff its list is non-empty;
//  * cd_mask(bank) has bit c set iff some member of `bank` covers CD c.
//
// All operations are O(1) except the (bank, row) hash probe, which hits a
// flat linear-probing table sized at init() to keep the load factor ≤ 1/4
// (at most one distinct row per occupied slot) — no allocation ever happens
// after init().
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/geometry.hpp"

namespace fgnvm::sched {

class RequestIndex {
 public:
  RequestIndex() = default;

  /// `slot_cap` bounds the slot ids ever inserted; `num_banks` is the
  /// rank-major bank count of the channel.
  void init(std::uint64_t slot_cap, std::uint64_t num_banks,
            std::uint64_t num_sags, std::uint64_t num_cds) {
    num_sags_ = num_sags;
    num_cds_ = num_cds;
    links_.assign(slot_cap, Links{});
    groups_.assign(num_banks * num_sags, Group{});
    active_all_.clear();
    active_all_.reserve(groups_.size());
    active_bank_.assign(num_banks, {});
    for (auto& v : active_bank_) v.reserve(num_sags);
    bank_count_.assign(num_banks, 0);
    cd_count_.assign(num_banks * num_cds, 0);
    cd_mask_.assign(num_banks, 0);
    std::uint64_t buckets = 4;
    while (buckets < 4 * slot_cap) buckets <<= 1;
    rows_.assign(buckets, RowEntry{});
    row_mask_ = buckets - 1;
    qhead_ = qtail_ = -1;
    size_ = 0;
  }

  bool empty() const { return size_ == 0; }
  std::uint64_t size() const { return size_; }

  void insert(std::int32_t slot, std::uint64_t bank,
              const mem::DecodedAddr& a) {
    Links& l = links_[static_cast<std::size_t>(slot)];
    l.qprev = qtail_;
    l.qnext = -1;
    if (qtail_ >= 0) {
      links_[static_cast<std::size_t>(qtail_)].qnext = slot;
    } else {
      qhead_ = slot;
    }
    qtail_ = slot;
    ++size_;

    const std::uint64_t g = bank * num_sags_ + a.sag;
    Group& grp = groups_[g];
    l.gprev = grp.tail;
    l.gnext = -1;
    if (grp.tail >= 0) {
      links_[static_cast<std::size_t>(grp.tail)].gnext = slot;
    } else {
      grp.head = slot;
    }
    grp.tail = slot;
    if (grp.count++ == 0) activate_group(g, bank);

    RowEntry& row = row_find_or_insert(row_key(bank, a.row));
    l.rprev = row.tail;
    l.rnext = -1;
    if (row.tail >= 0) {
      links_[static_cast<std::size_t>(row.tail)].rnext = slot;
    } else {
      row.head = slot;
    }
    row.tail = slot;
    ++row.count;

    ++bank_count_[bank];
    for (std::uint64_t i = 0; i < a.cd_count; ++i) {
      const std::uint64_t c = bank * num_cds_ + a.cd + i;
      if (cd_count_[c]++ == 0) cd_mask_[bank] |= 1ULL << (a.cd + i);
    }
  }

  void remove(std::int32_t slot, std::uint64_t bank,
              const mem::DecodedAddr& a) {
    Links& l = links_[static_cast<std::size_t>(slot)];
    if (l.qprev >= 0) {
      links_[static_cast<std::size_t>(l.qprev)].qnext = l.qnext;
    } else {
      qhead_ = l.qnext;
    }
    if (l.qnext >= 0) {
      links_[static_cast<std::size_t>(l.qnext)].qprev = l.qprev;
    } else {
      qtail_ = l.qprev;
    }
    --size_;

    const std::uint64_t g = bank * num_sags_ + a.sag;
    Group& grp = groups_[g];
    if (l.gprev >= 0) {
      links_[static_cast<std::size_t>(l.gprev)].gnext = l.gnext;
    } else {
      grp.head = l.gnext;
    }
    if (l.gnext >= 0) {
      links_[static_cast<std::size_t>(l.gnext)].gprev = l.gprev;
    } else {
      grp.tail = l.gprev;
    }
    if (--grp.count == 0) deactivate_group(g, bank);

    const std::uint64_t rk = row_key(bank, a.row);
    const std::uint64_t ri = row_find(rk);
    assert(ri != kNoBucket);
    RowEntry& row = rows_[ri];
    if (l.rprev >= 0) {
      links_[static_cast<std::size_t>(l.rprev)].rnext = l.rnext;
    } else {
      row.head = l.rnext;
    }
    if (l.rnext >= 0) {
      links_[static_cast<std::size_t>(l.rnext)].rprev = l.rprev;
    } else {
      row.tail = l.rprev;
    }
    if (--row.count == 0) row_erase(ri);

    --bank_count_[bank];
    for (std::uint64_t i = 0; i < a.cd_count; ++i) {
      const std::uint64_t c = bank * num_cds_ + a.cd + i;
      if (--cd_count_[c] == 0) cd_mask_[bank] &= ~(1ULL << (a.cd + i));
    }
    l = Links{};
  }

  // ---- global FIFO ------------------------------------------------------
  std::int32_t queue_head() const { return qhead_; }
  std::int32_t queue_next(std::int32_t slot) const {
    return links_[static_cast<std::size_t>(slot)].qnext;
  }

  // ---- per-(bank, SAG) groups ------------------------------------------
  std::int32_t group_head(std::uint64_t group) const {
    return groups_[group].head;
  }
  std::uint64_t group_count(std::uint64_t group) const {
    return groups_[group].count;
  }
  /// True iff `slot` is the oldest member of its (bank, SAG) group —
  /// exactly the requests the pre-index epoch-stamped scan called
  /// "first in group".
  bool is_group_head(std::int32_t slot) const {
    return links_[static_cast<std::size_t>(slot)].gprev < 0;
  }
  /// Global group ids (bank * num_sags + sag) with at least one member.
  /// Unordered — callers needing arrival order sort by sched_seq.
  const std::vector<std::uint32_t>& active_groups() const {
    return active_all_;
  }
  const std::vector<std::uint32_t>& active_groups_of_bank(
      std::uint64_t bank) const {
    return active_bank_[bank];
  }

  // ---- per-(bank, row) lists -------------------------------------------
  std::int32_t row_head(std::uint64_t bank, std::uint64_t row) const {
    const std::uint64_t i = row_find(row_key(bank, row));
    return i == kNoBucket ? -1 : rows_[i].head;
  }
  std::int32_t row_next(std::int32_t slot) const {
    return links_[static_cast<std::size_t>(slot)].rnext;
  }
  std::uint64_t row_count(std::uint64_t bank, std::uint64_t row) const {
    const std::uint64_t i = row_find(row_key(bank, row));
    return i == kNoBucket ? 0 : rows_[i].count;
  }

  // ---- aggregates -------------------------------------------------------
  std::uint64_t bank_count(std::uint64_t bank) const {
    return bank_count_[bank];
  }
  std::uint64_t cd_mask(std::uint64_t bank) const { return cd_mask_[bank]; }
  /// True iff any member of `bank` covers a CD in [cd, cd + cd_count).
  bool cd_overlap(std::uint64_t bank, std::uint64_t cd,
                  std::uint64_t cd_count) const {
    const std::uint64_t span =
        cd_count >= 64 ? ~0ULL : ((1ULL << cd_count) - 1) << cd;
    return (cd_mask_[bank] & span) != 0;
  }

 private:
  struct Links {
    std::int32_t qprev = -1, qnext = -1;  // global FIFO
    std::int32_t gprev = -1, gnext = -1;  // (bank, SAG) FIFO
    std::int32_t rprev = -1, rnext = -1;  // (bank, row) FIFO
  };
  struct Group {
    std::int32_t head = -1, tail = -1;
    std::uint32_t count = 0;
    std::int32_t pos_all = -1, pos_bank = -1;  // active-vector positions
  };
  static constexpr std::uint64_t kEmptyKey = ~0ULL;
  static constexpr std::uint64_t kNoBucket = ~0ULL;
  /// One (bank, row) list in the flat linear-probing table. kEmptyKey marks
  /// a vacant bucket; valid keys never collide with it (bank and row counts
  /// are far below the 2^24 / 2^40 split).
  struct RowEntry {
    std::uint64_t key = kEmptyKey;
    std::int32_t head = -1, tail = -1;
    std::uint32_t count = 0;
  };

  static std::uint64_t row_key(std::uint64_t bank, std::uint64_t row) {
    return (bank << 40) ^ row;  // rows_per_bank is far below 2^40
  }

  std::uint64_t row_bucket(std::uint64_t key) const {
    // splitmix64 finalizer: cheap, well-mixed for sequential row numbers.
    std::uint64_t x = key;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return (x ^ (x >> 31)) & row_mask_;
  }

  std::uint64_t row_find(std::uint64_t key) const {
    for (std::uint64_t i = row_bucket(key);; i = (i + 1) & row_mask_) {
      if (rows_[i].key == key) return i;
      if (rows_[i].key == kEmptyKey) return kNoBucket;
    }
  }

  RowEntry& row_find_or_insert(std::uint64_t key) {
    assert(key != kEmptyKey);
    for (std::uint64_t i = row_bucket(key);; i = (i + 1) & row_mask_) {
      if (rows_[i].key == key) return rows_[i];
      if (rows_[i].key == kEmptyKey) {
        rows_[i].key = key;
        return rows_[i];
      }
    }
  }

  /// Standard open-addressing deletion: vacate the bucket, then re-place
  /// any cluster member that probing can no longer reach through the hole.
  void row_erase(std::uint64_t i) {
    rows_[i] = RowEntry{};
    for (std::uint64_t j = (i + 1) & row_mask_; rows_[j].key != kEmptyKey;
         j = (j + 1) & row_mask_) {
      const std::uint64_t home = row_bucket(rows_[j].key);
      const bool reachable =
          i <= j ? (home > i && home <= j) : (home > i || home <= j);
      if (!reachable) {
        rows_[i] = rows_[j];
        rows_[j] = RowEntry{};
        i = j;
      }
    }
  }

  void activate_group(std::uint64_t g, std::uint64_t bank) {
    Group& grp = groups_[g];
    grp.pos_all = static_cast<std::int32_t>(active_all_.size());
    active_all_.push_back(static_cast<std::uint32_t>(g));
    auto& per_bank = active_bank_[bank];
    grp.pos_bank = static_cast<std::int32_t>(per_bank.size());
    per_bank.push_back(static_cast<std::uint32_t>(g));
  }

  void deactivate_group(std::uint64_t g, std::uint64_t bank) {
    Group& grp = groups_[g];
    const std::uint32_t last_all = active_all_.back();
    active_all_[static_cast<std::size_t>(grp.pos_all)] = last_all;
    groups_[last_all].pos_all = grp.pos_all;
    active_all_.pop_back();
    auto& per_bank = active_bank_[bank];
    const std::uint32_t last_bank = per_bank.back();
    per_bank[static_cast<std::size_t>(grp.pos_bank)] = last_bank;
    groups_[last_bank].pos_bank = grp.pos_bank;
    per_bank.pop_back();
    grp.pos_all = grp.pos_bank = -1;
  }

  std::uint64_t num_sags_ = 1;
  std::uint64_t num_cds_ = 1;
  std::vector<Links> links_;
  std::vector<Group> groups_;
  std::vector<std::uint32_t> active_all_;
  std::vector<std::vector<std::uint32_t>> active_bank_;
  std::vector<RowEntry> rows_;
  std::uint64_t row_mask_ = 0;
  std::vector<std::uint64_t> bank_count_;
  std::vector<std::uint32_t> cd_count_;  // bank * num_cds + cd
  std::vector<std::uint64_t> cd_mask_;   // per bank
  std::int32_t qhead_ = -1, qtail_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace fgnvm::sched
